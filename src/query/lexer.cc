#include "query/lexer.h"

#include <cctype>
#include <limits>

namespace vaq {
namespace query {

bool KeywordEquals(const std::string& text, const char* keyword) {
  size_t i = 0;
  for (; i < text.size() && keyword[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return i == text.size() && keyword[i] == '\0';
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      int64_t value = 0;
      bool overflow = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        const int64_t digit = input[j] - '0';
        if (value > (std::numeric_limits<int64_t>::max() - digit) / 10) {
          overflow = true;
        } else {
          value = value * 10 + digit;
        }
        ++j;
      }
      if (overflow) {
        return Status::InvalidArgument("number literal overflows at offset " +
                                       std::to_string(i));
      }
      token.kind = TokenKind::kNumber;
      token.text = input.substr(i, j - i);
      token.number = value;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      switch (c) {
        case '(':
          token.kind = TokenKind::kLParen;
          break;
        case ')':
          token.kind = TokenKind::kRParen;
          break;
        case ',':
          token.kind = TokenKind::kComma;
          break;
        case '.':
          token.kind = TokenKind::kDot;
          break;
        case '=':
          token.kind = TokenKind::kEquals;
          break;
        case '*':
          token.kind = TokenKind::kStar;
          break;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(i));
      }
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace query
}  // namespace vaq
