#include "query/session.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "offline/repository.h"
#include "online/cnf_engine.h"
#include "video/cnf_query.h"

#include "query/lexer.h"
#include "query/parser.h"

namespace vaq {
namespace query {
namespace {

// Binds a CNF statement to an ingested video by type names.
StatusOr<offline::QueryTables> BindCnfByName(
    const storage::VideoIndex& index,
    const std::vector<std::vector<std::string>>& clauses) {
  // Build a temporary vocabulary mirroring the index's type ids so
  // CnfQuery name resolution and BindCnf agree.
  Vocabulary vocab;
  for (const storage::TypeIndex& t : index.objects) {
    vocab.AddObjectType(t.type_name);
  }
  for (const storage::TypeIndex& t : index.actions) {
    vocab.AddActionType(t.type_name);
  }
  VAQ_ASSIGN_OR_RETURN(CnfQuery query, CnfQuery::FromNames(vocab, clauses));
  // The temporary vocabulary assigned dense ids in index order, which is
  // exactly how VideoIndex stores them when ingested from a Vocabulary —
  // but be safe and remap via names.
  for (Clause& clause : query.clauses) {
    for (Literal& literal : clause.literals) {
      if (literal.kind == Literal::Kind::kObject) {
        const storage::TypeIndex* entry =
            index.FindObjectByName(vocab.ObjectTypeName(literal.type));
        VAQ_CHECK(entry != nullptr);
        literal.type = entry->type_id;
      } else {
        const storage::TypeIndex* entry =
            index.FindActionByName(vocab.ActionTypeName(literal.type));
        VAQ_CHECK(entry != nullptr);
        literal.type = entry->type_id;
      }
    }
  }
  // BindCnf only consults the index (vocab is for error text).
  return offline::QueryTables::BindCnf(index, query, vocab);
}

}  // namespace

const char* StatementModelStack(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    if (KeywordEquals(name, "YOLOv3") || KeywordEquals(name, "yolo")) {
      return "yolo_i3d";
    }
    if (KeywordEquals(name, "Ideal") || KeywordEquals(name, "IdealModel")) {
      return "ideal";
    }
  }
  return "maskrcnn_i3d";
}

detect::ModelBundle MakeStatementModels(const std::vector<std::string>& names,
                                        const synth::GroundTruth& truth,
                                        uint64_t seed) {
  const std::string stack = StatementModelStack(names);
  if (stack == "yolo_i3d") return detect::ModelBundle::YoloI3d(truth, seed);
  if (stack == "ideal") return detect::ModelBundle::Ideal(truth, seed);
  return detect::ModelBundle::MaskRcnnI3d(truth, seed);
}

StatusOr<QueryResult> ExecuteRankedStatement(
    const QueryStatement& stmt, const storage::VideoIndex& index,
    const offline::ScoringModel& scoring,
    const offline::ScoringModel& cnf_scoring,
    const obs::QueryContext& ctx,
    const cascade::ProxySet* proxy) {
  VAQ_TRACE_SPAN("session/ranked_query");
  QueryResult result;
  // Cascade planning (WITH RECALL < 1.0). A target of exactly 1.0 skips
  // this block entirely — no plan, no counters, no extra phase node — so
  // exact-path results stay byte-identical to pre-cascade builds.
  cascade::CascadePlan plan;
  std::unique_ptr<cascade::PlanFilters> filters;
  const IntervalSet* surviving = nullptr;
  if (stmt.recall_target < 1.0) {
    const obs::QueryContext cascade_phase = ctx.Child("cascade");
    if (proxy != nullptr && stmt.IsConjunctive()) {
      cascade::Planner planner(proxy);
      VAQ_ASSIGN_OR_RETURN(
          plan, planner.Plan(stmt.action, stmt.objects, stmt.recall_target));
    } else {
      // No proxy tier registered, or a CNF statement the planner does not
      // model: fall back to the exact path while honoring the clause.
      plan.recall_target = stmt.recall_target;
    }
    obs::MetricRegistry::Global()
        .GetCounter("vaq_cascade_plans_total",
                    {{"mode", plan.use_cascade ? "cascade" : "exact"}})
        ->Increment();
    result.cascade_plan = plan.ToString();
    cascade_phase.AddStat("clips_total", plan.clips_total);
    cascade_phase.AddStat("clips_surviving", plan.clips_surviving);
    if (plan.use_cascade) {
      filters.reset(new cascade::PlanFilters(proxy, plan));
      surviving = filters->SurvivingClips(stmt.video);
      if (surviving != nullptr && surviving->empty()) {
        // The proxy rules out the whole video: answer without binding.
        obs::MetricRegistry::Global()
            .GetCounter("vaq_cascade_videos_pruned_total")
            ->Increment();
        result.online = false;
        return result;
      }
    }
  }
  const obs::QueryContext phase = ctx.Child("ranked");
  obs::ScopedQueryContext scoped(phase);
  offline::QueryTables tables;
  const offline::ScoringModel* bound_scoring = &scoring;
  if (stmt.IsConjunctive()) {
    VAQ_ASSIGN_OR_RETURN(
        tables, offline::BindByName(index, stmt.action, stmt.objects));
  } else {
    VAQ_ASSIGN_OR_RETURN(tables, BindCnfByName(index, stmt.cnf_clauses));
    bound_scoring = &cnf_scoring;
  }
  offline::RvaqOptions options;
  options.k = stmt.limit > 0 ? stmt.limit : 5;
  options.clip_filter = surviving;
  offline::Rvaq rvaq(&tables, bound_scoring, options);
  offline::TopKResult topk = rvaq.Run();
  if (topk.candidates_pruned > 0) {
    phase.AddStat("candidates_pruned", topk.candidates_pruned);
  }
  result.online = false;
  result.ranked = std::move(topk.top);
  result.accesses = topk.accesses;
  IntervalSet merged;
  for (const offline::RankedSequence& seq : result.ranked) {
    merged.Add(seq.clips);
  }
  result.sequences = std::move(merged);
  phase.AddMs(result.accesses.ModeledMs(kModeledSeekMs, kModeledRowMs));
  phase.AddStat("seeks", result.accesses.seeks());
  phase.AddStat("sequential_rows", result.accesses.sequential_rows());
  phase.AddStat("results", static_cast<int64_t>(result.ranked.size()));
  return result;
}

StatusOr<QueryResult> ExecuteOnlineStatement(
    const QueryStatement& stmt, const synth::Scenario& scenario,
    const online::SvaqdOptions& options, detect::ModelBundle* models,
    const obs::QueryContext& ctx) {
  VAQ_TRACE_SPAN("session/online_query");
  const obs::QueryContext phase = ctx.Child("online");
  // The resilient model wrappers read the thread-local context, so their
  // per-outcome call counts land on this query's "online" node.
  obs::ScopedQueryContext scoped(phase);
  const auto charge = [&phase](const QueryResult& r) {
    phase.AddMs(r.detector_stats.simulated_ms +
                r.recognizer_stats.simulated_ms);
    phase.AddStat("detector_inferences", r.detector_stats.inferences);
    phase.AddStat("recognizer_inferences", r.recognizer_stats.inferences);
    if (r.degraded_clips > 0) phase.AddStat("degraded_clips", r.degraded_clips);
    if (r.dropped_clips > 0) phase.AddStat("dropped_clips", r.dropped_clips);
  };
  QueryResult result;
  result.online = true;
  if (stmt.IsConjunctive()) {
    VAQ_ASSIGN_OR_RETURN(
        QuerySpec spec,
        QuerySpec::FromNames(scenario.vocab(), stmt.action, stmt.objects));
    online::Svaqd engine(spec, scenario.layout(), options);
    online::OnlineResult online_result =
        engine.Run(models->detector.get(), models->recognizer.get());
    result.sequences = std::move(online_result.sequences);
    result.detector_stats = online_result.detector_stats;
    result.recognizer_stats = online_result.recognizer_stats;
    result.degraded_clips = online_result.degraded_clips;
    result.dropped_clips = online_result.dropped_clips;
    charge(result);
    return result;
  }
  // General CNF statement (footnotes 3-4): the disjunction-aware engine.
  VAQ_ASSIGN_OR_RETURN(
      CnfQuery cnf,
      CnfQuery::FromNames(scenario.vocab(), stmt.cnf_clauses));
  online::CnfEngineOptions cnf_options;
  cnf_options.svaqd = options;
  online::CnfEngine engine(cnf, scenario.layout(), cnf_options);
  online::CnfResult cnf_result =
      engine.Run(models->detector.get(), models->recognizer.get());
  result.sequences = std::move(cnf_result.sequences);
  result.detector_stats = cnf_result.detector_stats;
  result.recognizer_stats = cnf_result.recognizer_stats;
  charge(result);
  return result;
}

void Session::RegisterStream(const std::string& name,
                             synth::Scenario scenario, uint64_t model_seed,
                             online::SvaqdOptions svaqd_options) {
  streams_.insert_or_assign(
      name, StreamSource{std::move(scenario), model_seed,
                         std::move(svaqd_options)});
}

void Session::RegisterRepository(const std::string& name,
                                 storage::VideoIndex index) {
  repositories_.insert_or_assign(name, std::move(index));
}

void Session::RegisterRankedBackend(const std::string& name,
                                    RankedBackend* backend) {
  backends_.insert_or_assign(name, backend);
}

StatusOr<QueryResult> Session::Execute(const std::string& sql) {
  VAQ_ASSIGN_OR_RETURN(QueryStatement stmt, Parse(sql));
  return Execute(stmt);
}

StatusOr<QueryResult> Session::Execute(const QueryStatement& stmt) {
  if (stmt.explain_analyze) {
    // EXPLAIN ANALYZE outside a serving context: profile into a private
    // trace and render it. The root name is fixed so the output is a
    // pure function of the statement's execution.
    obs::QueryTrace trace("explain");
    const obs::QueryContext root{&trace, 0};
    VAQ_ASSIGN_OR_RETURN(QueryResult result, Execute(stmt, root));
    result.profile_text = trace.RenderProfile();
    return result;
  }
  return Execute(stmt, obs::QueryContext{});
}

StatusOr<QueryResult> Session::Execute(const QueryStatement& stmt,
                                       const obs::QueryContext& ctx) {
  const bool offline_query = stmt.ranked || stmt.limit >= 0;
  obs::MetricRegistry::Global()
      .GetCounter("vaq_session_statements_total",
                  {{"kind", offline_query ? "ranked" : "online"}})
      ->Increment();
  if (offline_query) {
    auto backend = backends_.find(stmt.video);
    if (backend != backends_.end()) {
      return backend->second->ExecuteRanked(stmt, ctx);
    }
    auto it = repositories_.find(stmt.video);
    if (it == repositories_.end()) {
      return Status::NotFound("no repository video named '" + stmt.video +
                              "'");
    }
    return ExecuteRankedStatement(stmt, it->second, scoring_, cnf_scoring_,
                                  ctx, proxy_);
  }

  auto it = streams_.find(stmt.video);
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + stmt.video + "'");
  }
  const StreamSource& source = it->second;
  detect::ModelBundle models = MakeStatementModels(
      stmt.models, source.scenario.truth(), source.model_seed);
  return ExecuteOnlineStatement(stmt, source.scenario, source.options,
                                &models, ctx);
}

}  // namespace query
}  // namespace vaq
