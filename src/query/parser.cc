#include "query/parser.h"

#include <sstream>

#include "query/lexer.h"

namespace vaq {
namespace query {
namespace {

// Token-stream cursor with Status-returning expectation helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<QueryStatement> ParseStatement() {
    QueryStatement stmt;
    if (AtKeyword("EXPLAIN")) {
      Advance();
      VAQ_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
      stmt.explain_analyze = true;
    }
    VAQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    VAQ_RETURN_IF_ERROR(ParseSelectList(&stmt));
    VAQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    VAQ_RETURN_IF_ERROR(ParseSource(&stmt));
    if (AtKeyword("WHERE")) {
      Advance();
      VAQ_RETURN_IF_ERROR(ParsePredicates(&stmt));
    }
    if (AtKeyword("ORDER")) {
      Advance();
      VAQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      VAQ_RETURN_IF_ERROR(ExpectKeyword("RANK"));
      VAQ_RETURN_IF_ERROR(SkipParenGroup());
      stmt.ranked = true;
      VAQ_RETURN_IF_ERROR(ExpectKeyword("LIMIT"));
      if (Current().kind != TokenKind::kNumber) {
        return Error("expected a number after LIMIT");
      }
      stmt.limit = Current().number;
      Advance();
    }
    if (AtKeyword("WITH")) {
      Advance();
      VAQ_RETURN_IF_ERROR(ExpectKeyword("RECALL"));
      VAQ_RETURN_IF_ERROR(ParseRecallTarget(&stmt));
    }
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    if (stmt.cnf_clauses.empty()) {
      return Error("query has no predicates (WHERE clause required)");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AtKeyword(const char* keyword) const {
    return Current().kind == TokenKind::kIdentifier &&
           KeywordEquals(Current().text, keyword);
  }

  Status ExpectKeyword(const char* keyword) {
    if (!AtKeyword(keyword)) {
      return Error(std::string("expected keyword ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Current().kind != kind) {
      return Error(std::string("expected ") + what);
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    std::ostringstream os;
    os << message << " at offset " << Current().offset << " (near '"
       << Current().text << "')";
    return Status::InvalidArgument(os.str());
  }

  // WITH RECALL τ: the lexer has no float token, so the target arrives
  // as kNumber [kDot kNumber] and is assembled here (the fractional
  // scale comes from the token's digit count, so trailing zeros in
  // "0.90" are honored). Valid range is (0, 1].
  Status ParseRecallTarget(QueryStatement* stmt) {
    const Token first = Current();
    if (first.kind != TokenKind::kNumber) {
      return Error("expected recall target after RECALL");
    }
    double value = static_cast<double>(first.number);
    Advance();
    if (Current().kind == TokenKind::kDot) {
      Advance();
      if (Current().kind != TokenKind::kNumber) {
        return Error("expected digits after '.' in recall target");
      }
      double scale = 1.0;
      for (size_t i = 0; i < Current().text.size(); ++i) scale *= 10.0;
      value += static_cast<double>(Current().number) / scale;
      Advance();
    }
    if (!(value > 0.0) || value > 1.0) {
      // Anchored at the number's FIRST token; Error() would point past
      // the already-consumed digits.
      std::ostringstream os;
      os << "recall target must be in (0, 1] at offset " << first.offset
         << " (near '" << first.text << "')";
      return Status::InvalidArgument(os.str());
    }
    stmt->recall_target = value;
    return Status::OK();
  }

  // Skips a balanced parenthesized group, e.g. the argument list of
  // RANK(act, obj).
  Status SkipParenGroup() {
    VAQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    int depth = 1;
    while (depth > 0) {
      if (Current().kind == TokenKind::kEnd) {
        return Error("unterminated '('");
      }
      if (Current().kind == TokenKind::kLParen) ++depth;
      if (Current().kind == TokenKind::kRParen) --depth;
      Advance();
    }
    return Status::OK();
  }

  Status ParseSelectList(QueryStatement* stmt) {
    for (;;) {
      if (AtKeyword("MERGE")) {
        Advance();
        VAQ_RETURN_IF_ERROR(SkipParenGroup());
        if (AtKeyword("AS")) {
          Advance();
          VAQ_RETURN_IF_ERROR(
              Expect(TokenKind::kIdentifier, "alias after AS"));
        }
      } else if (AtKeyword("RANK")) {
        Advance();
        VAQ_RETURN_IF_ERROR(SkipParenGroup());
        stmt->ranked = true;
      } else if (Current().kind == TokenKind::kIdentifier ||
                 Current().kind == TokenKind::kStar) {
        Advance();  // Plain projection item, e.g. frameSequence.
      } else {
        return Error("expected a select item");
      }
      if (Current().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  Status ParseSource(QueryStatement* stmt) {
    if (Current().kind == TokenKind::kIdentifier) {
      stmt->video = Current().text;
      Advance();
      return Status::OK();
    }
    VAQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' or video name"));
    VAQ_RETURN_IF_ERROR(ExpectKeyword("PROCESS"));
    if (Current().kind != TokenKind::kIdentifier &&
        Current().kind != TokenKind::kString) {
      return Error("expected video name after PROCESS");
    }
    stmt->video = Current().text;
    Advance();
    VAQ_RETURN_IF_ERROR(ExpectKeyword("PRODUCE"));
    // produce_item (, produce_item)*
    for (;;) {
      VAQ_RETURN_IF_ERROR(
          Expect(TokenKind::kIdentifier, "produced column name"));
      if (AtKeyword("USING")) {
        Advance();
        if (Current().kind != TokenKind::kIdentifier) {
          return Error("expected model name after USING");
        }
        stmt->models.push_back(Current().text);
        Advance();
      }
      if (Current().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return Expect(TokenKind::kRParen, "')'");
  }

  // One atomic predicate: act='x' or obj='x'. Appends its literal(s) to
  // `clause`. `allow_include` permits obj.include('a','b'), which expands
  // to several literals (a conjunction — only legal outside OR groups,
  // where it contributes one singleton clause per object).
  Status ParseAtom(std::vector<std::string>* clause, bool allow_include) {
    if (Current().kind != TokenKind::kIdentifier) {
      return Error("expected predicate");
    }
    const std::string head = Current().text;
    Advance();
    if (Current().kind == TokenKind::kEquals) {
      Advance();
      if (Current().kind != TokenKind::kString) {
        return Error("expected quoted value after '='");
      }
      if (KeywordEquals(head, "act") || KeywordEquals(head, "action")) {
        clause->push_back("act:" + Current().text);
      } else if (KeywordEquals(head, "obj") ||
                 KeywordEquals(head, "object")) {
        clause->push_back("obj:" + Current().text);
      } else {
        return Error("only act='...' and obj='...' predicates are "
                     "supported");
      }
      Advance();
      return Status::OK();
    }
    if (Current().kind == TokenKind::kDot) {
      Advance();
      if (Current().kind != TokenKind::kIdentifier ||
          (!KeywordEquals(Current().text, "include") &&
           !KeywordEquals(Current().text, "inc"))) {
        return Error("expected include(...) after '.'");
      }
      if (!KeywordEquals(head, "obj") && !KeywordEquals(head, "objects")) {
        return Error("only obj.include(...) predicates are supported");
      }
      if (!allow_include) {
        return Error("obj.include(...) is a conjunction and cannot appear "
                     "inside an OR group; use obj='...'");
      }
      Advance();
      VAQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      for (;;) {
        if (Current().kind != TokenKind::kString) {
          return Error("expected quoted object name");
        }
        clause->push_back("obj:" + Current().text);
        Advance();
        if (Current().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      return Expect(TokenKind::kRParen, "')'");
    }
    return Error("malformed predicate");
  }

  // predicates := clause (AND clause)*
  // clause     := atom | '(' atom (OR atom)* ')'
  // Outside parentheses, obj.include('a','b') expands to one singleton
  // clause per object (a conjunction, as in the paper's core form);
  // inside parentheses each atom is one literal of the disjunction
  // (footnote 4's CNF).
  Status ParsePredicates(QueryStatement* stmt) {
    for (;;) {
      if (Current().kind == TokenKind::kLParen) {
        Advance();
        std::vector<std::string> clause;
        VAQ_RETURN_IF_ERROR(ParseAtom(&clause, /*allow_include=*/false));
        while (AtKeyword("OR")) {
          Advance();
          VAQ_RETURN_IF_ERROR(ParseAtom(&clause, /*allow_include=*/false));
        }
        VAQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        stmt->cnf_clauses.push_back(std::move(clause));
      } else {
        std::vector<std::string> literals;
        VAQ_RETURN_IF_ERROR(ParseAtom(&literals, /*allow_include=*/true));
        // A bare conjunction: each literal is its own clause.
        for (std::string& literal : literals) {
          stmt->cnf_clauses.push_back({std::move(literal)});
        }
      }
      if (AtKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    // Derive the conjunctive convenience fields.
    if (stmt->IsConjunctive()) {
      for (const auto& clause : stmt->cnf_clauses) {
        const std::string& literal = clause[0];
        if (literal.rfind("act:", 0) == 0) {
          if (!stmt->action.empty()) {
            return Error("duplicate action predicate");
          }
          stmt->action = literal.substr(4);
        } else {
          stmt->objects.push_back(literal.substr(4));
        }
      }
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<QueryStatement> Parse(const std::string& sql) {
  VAQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace query
}  // namespace vaq
