// Abstract syntax of the paper's SQL-like query language (§1-2).
//
// Two statement forms are supported, mirroring the paper's examples:
//
//   -- online (streaming):
//   SELECT MERGE(clipID) AS Sequence
//   FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector,
//         act USING ActionRecognizer)
//   WHERE act='jumping' AND obj.include('car', 'human')
//
//   -- offline (repository, ranked):
//   SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
//   FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker,
//         act USING ActionRecognizer)
//   WHERE act='jumping' AND obj.include('car', 'human')
//   ORDER BY RANK(act, obj) LIMIT K
//
// `obj.inc(...)` is accepted as an alias of `obj.include(...)`; keywords
// are case-insensitive; either or both of the act/obj predicates may be
// present. An optional `EXPLAIN ANALYZE` prefix executes the statement
// and attaches a deterministic per-phase cost profile to the result.
#ifndef VAQ_QUERY_AST_H_
#define VAQ_QUERY_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vaq {
namespace query {

struct QueryStatement {
  // FROM (PROCESS <video> ...): the registered stream/repository name.
  std::string video;
  // Models named in USING clauses, in order of appearance (informational;
  // the session decides the actual model bundle).
  std::vector<std::string> models;
  // WHERE act='<action>'; empty when absent or when the statement needs
  // the general CNF form (see cnf_clauses).
  std::string action;
  // WHERE obj.include('a', 'b', ...); empty when absent.
  std::vector<std::string> objects;
  // General CNF form: one entry per clause, literals prefixed "obj:" /
  // "act:". Always populated; `IsConjunctive()` says whether the simpler
  // action/objects fields fully describe the statement.
  std::vector<std::vector<std::string>> cnf_clauses;
  // SELECT ... RANK(...) and/or ORDER BY RANK(...) present.
  bool ranked = false;
  // LIMIT K; -1 when absent.
  int64_t limit = -1;
  // WITH RECALL τ; 1.0 when absent. τ < 1.0 lets the session/cluster
  // plan a proxy-model cascade (src/cascade/) that meets the target at
  // minimum modeled cost; exactly 1.0 always executes the exact path.
  double recall_target = 1.0;
  // EXPLAIN ANALYZE prefix: execute the statement and attach a per-phase
  // profile tree (query/session.h fills QueryResult::profile_text).
  bool explain_analyze = false;

  // True when the statement is a plain conjunction of at most one action
  // and object presences (the paper's core form); false when it uses
  // disjunctive clauses or multiple actions (footnotes 3-4).
  bool IsConjunctive() const;

  std::string ToString() const;
};

}  // namespace query
}  // namespace vaq

#endif  // VAQ_QUERY_AST_H_
