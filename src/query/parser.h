// Recursive-descent parser for the VAQ query language (grammar in ast.h).
#ifndef VAQ_QUERY_PARSER_H_
#define VAQ_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace vaq {
namespace query {

// Parses one statement. Returns InvalidArgument with a position-annotated
// message on syntax errors.
StatusOr<QueryStatement> Parse(const std::string& sql);

}  // namespace query
}  // namespace vaq

#endif  // VAQ_QUERY_PARSER_H_
