#include "query/ast.h"

#include <sstream>

namespace vaq {
namespace query {

bool QueryStatement::IsConjunctive() const {
  int actions = 0;
  for (const auto& clause : cnf_clauses) {
    if (clause.size() != 1) return false;
    if (clause[0].rfind("act:", 0) == 0) ++actions;
  }
  return actions <= 1;
}

std::string QueryStatement::ToString() const {
  std::ostringstream os;
  os << "Query{video=" << video;
  if (!action.empty()) os << ", act=" << action;
  if (!objects.empty()) {
    os << ", obj=[";
    for (size_t i = 0; i < objects.size(); ++i) {
      if (i > 0) os << ", ";
      os << objects[i];
    }
    os << "]";
  }
  if (!IsConjunctive()) {
    os << ", cnf=";
    for (size_t c = 0; c < cnf_clauses.size(); ++c) {
      if (c > 0) os << "&";
      os << "(";
      for (size_t l = 0; l < cnf_clauses[c].size(); ++l) {
        if (l > 0) os << "|";
        os << cnf_clauses[c][l];
      }
      os << ")";
    }
  }
  if (ranked) os << ", ranked";
  if (limit >= 0) os << ", limit=" << limit;
  if (recall_target < 1.0) os << ", recall=" << recall_target;
  if (explain_analyze) os << ", explain";
  os << "}";
  return os.str();
}

}  // namespace query
}  // namespace vaq
