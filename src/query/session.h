// Query execution session.
//
// A `Session` maps the video names appearing in FROM clauses to actual
// data sources:
//
//   * a *stream* — a video processed online with SVAQD (no ORDER BY);
//   * a *repository video* — an ingested storage::VideoIndex queried with
//     RVAQ (ORDER BY RANK ... LIMIT K).
//
// `Execute` parses a statement, resolves the source, dispatches to the
// right engine and returns a uniform result.
#ifndef VAQ_QUERY_SESSION_H_
#define VAQ_QUERY_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cascade/planner.h"
#include "common/status.h"
#include "detect/models.h"
#include "obs/query_trace.h"
#include "offline/rvaq.h"
#include "online/svaqd.h"
#include "query/ast.h"
#include "synth/scenario.h"

namespace vaq {
namespace query {

// Modeled disk cost of the offline access path: every seek-like access
// costs kModeledSeekMs, every sequentially streamed row kModeledRowMs.
// One definition shared by EXPLAIN ANALYZE profiles, the serving layer's
// per-query accounting and the benches, so the numbers reconcile.
inline constexpr double kModeledSeekMs = 5.0;
inline constexpr double kModeledRowMs = 0.01;

// Uniform result of a statement.
struct QueryResult {
  bool online = false;
  // Online: the merged result sequences (clip granularity).
  IntervalSet sequences;
  // Offline: the top-K ranked sequences.
  std::vector<offline::RankedSequence> ranked;
  // Offline: access accounting of the run.
  storage::AccessCounter accesses;
  // Online: model invocation stats, including fault/retry/fallback
  // counters when the stream runs with fault injection.
  detect::ModelStats detector_stats;
  detect::ModelStats recognizer_stats;
  // Online: clips answered with at least one missing observation, and
  // clips lost wholesale (nonzero only under fault injection).
  int64_t degraded_clips = 0;
  int64_t dropped_clips = 0;
  // EXPLAIN ANALYZE only: the rendered per-phase profile tree
  // (obs::QueryTrace::RenderProfile). Empty otherwise.
  std::string profile_text;
  // WITH RECALL < 1.0 only: the chosen plan, rendered
  // (cascade::CascadePlan::ToString, or "exact(...)" on fallback).
  // Empty on the exact path so recall-1.0 results stay byte-identical.
  std::string cascade_plan;
  // Standing-query cascade only: clips the proxy ruled out and the
  // engine skipped without a model call.
  int64_t clips_pruned = 0;
};

// --- Stateless execution cores -----------------------------------------
// `Session::Execute` and the concurrent serving runtime (src/serve/) run
// statements through the same functions, so a served query cannot drift
// from its single-session semantics.

// Chooses the model stack selected by the statement's USING names
// (defaults to MaskRCNN + I3D) and builds a fresh bundle over `truth`.
detect::ModelBundle MakeStatementModels(const std::vector<std::string>& names,
                                        const synth::GroundTruth& truth,
                                        uint64_t seed);
// Canonical name of that stack ("maskrcnn_i3d", "yolo_i3d", "ideal"); the
// serving layer keys its shared detection cache by it.
const char* StatementModelStack(const std::vector<std::string>& names);

// Runs an online (streaming) statement against `scenario` using
// caller-owned `models` (whose stack must match the statement; see
// MakeStatementModels). The returned stats are per-run deltas, so a
// bundle shared across successive statements reports each statement's
// marginal cost only. `ctx` (optional) attributes the run's simulated ms
// and model-call outcomes to a per-query trace; the context is also
// installed thread-locally for the duration so the resilient model
// wrappers charge the same query.
StatusOr<QueryResult> ExecuteOnlineStatement(
    const QueryStatement& stmt, const synth::Scenario& scenario,
    const online::SvaqdOptions& options, detect::ModelBundle* models,
    const obs::QueryContext& ctx = {});

// Runs a ranked (repository) statement against `index`. `scoring` serves
// conjunctive statements, `cnf_scoring` general CNF ones; both are
// stateless and may be shared across threads. `ctx` as above. When the
// statement carries WITH RECALL < 1.0 and `proxy` covers the video, a
// cascade is planned (src/cascade/) and the proxy pre-filter prunes
// candidate sequences before RVAQ binds tables; otherwise the statement
// falls back to the exact path. A recall target of exactly 1.0 never
// consults the planner.
StatusOr<QueryResult> ExecuteRankedStatement(
    const QueryStatement& stmt, const storage::VideoIndex& index,
    const offline::ScoringModel& scoring,
    const offline::ScoringModel& cnf_scoring,
    const obs::QueryContext& ctx = {},
    const cascade::ProxySet* proxy = nullptr);

// A pluggable executor for ranked statements over a named source that is
// not a locally-held VideoIndex. The cluster coordinator implements this
// (src/cluster/coordinator.h), so ranked statements whose FROM clause
// names a registered backend route through sharded scatter–gather while
// the query layer stays free of cluster types (the dependency points
// cluster → query, never the reverse).
class RankedBackend {
 public:
  virtual ~RankedBackend() = default;

  // Executes a ranked statement; must return results identical to
  // running the statement against the equivalent single-node repository.
  // `ctx` attributes the backend's work (shard fan-out, batches, bytes on
  // the simulated network) to the query's trace; backends must tolerate
  // an inactive context.
  virtual StatusOr<QueryResult> ExecuteRanked(const QueryStatement& stmt,
                                              const obs::QueryContext& ctx) = 0;
};

class Session {
 public:
  Session() = default;

  // Registers a streaming source: the scenario's video processed by a
  // fresh model bundle per query. `svaqd_options` configures the engine.
  void RegisterStream(const std::string& name, synth::Scenario scenario,
                      uint64_t model_seed = 1,
                      online::SvaqdOptions svaqd_options = {});

  // Registers an ingested repository video.
  void RegisterRepository(const std::string& name,
                          storage::VideoIndex index);

  // Registers a ranked backend (e.g. a cluster coordinator) under a FROM
  // name. Ranked statements naming it are routed to the backend; the
  // backend is not owned and must outlive the session. A backend wins
  // over a repository video of the same name.
  void RegisterRankedBackend(const std::string& name, RankedBackend* backend);

  // Registers the ingest-time proxy tier consulted by WITH RECALL
  // statements over repository videos (keys must match the repository
  // names). Not owned; nullptr unregisters. Without one, approximate
  // statements fall back to the exact path.
  void RegisterProxySet(const cascade::ProxySet* proxy) { proxy_ = proxy; }

  // Parses and runs one statement. An EXPLAIN ANALYZE statement executes
  // normally and additionally fills QueryResult::profile_text with the
  // deterministic per-phase profile tree.
  StatusOr<QueryResult> Execute(const std::string& sql);

  // Runs an already-parsed statement.
  StatusOr<QueryResult> Execute(const QueryStatement& stmt);

  // Runs a statement, attributing its cost to `ctx` (the serving layer
  // passes each admitted query's own trace node here).
  StatusOr<QueryResult> Execute(const QueryStatement& stmt,
                                const obs::QueryContext& ctx);

 private:
  struct StreamSource {
    synth::Scenario scenario;
    uint64_t model_seed;
    online::SvaqdOptions options;
  };

  std::map<std::string, StreamSource> streams_;
  std::map<std::string, storage::VideoIndex> repositories_;
  std::map<std::string, RankedBackend*> backends_;
  const cascade::ProxySet* proxy_ = nullptr;
  offline::PaperScoring scoring_;
  offline::CnfScoring cnf_scoring_;
};

}  // namespace query
}  // namespace vaq

#endif  // VAQ_QUERY_SESSION_H_
