// Cost-based cascade planner (DESIGN.md §14).
//
// Given a conjunctive query (action + objects) and a recall target τ
// from the WITH RECALL clause, the planner calibrates one proxy-score
// threshold per concept from the held-out samples in the proxy index
// and decides between two physical plans:
//
//   exact    — today's pipeline, untouched. Chosen when τ = 1.0, when
//              no proxy index covers the query, or when the cascade's
//              modeled cost is not actually lower.
//   cascade  — proxy pre-filter first: only clips whose proxy score
//              clears EVERY concept's threshold reach the expensive
//              models. Per-concept targets are τ^(1/n) so the product
//              of per-concept recalls meets τ (concept noise is drawn
//              independently at ingest).
//
// Thresholds are order statistics of the pooled held-out positives —
// the score at quantile (1 − r) — so a fraction r of known positives
// survives by construction; `predicted_recall` is the product of the
// per-concept held-out survival fractions. Modeled costs use the same
// ModelProfile::inference_ms accounting as the rest of the repo: the
// exact plan pays every clip's frames × detector ms (per object) plus
// shots × recognizer ms; the cascade pays one proxy call per clip plus
// the expensive bill on surviving clips only.
//
// Everything here is a pure function of (proxy index, query, τ):
// plans, thresholds and surviving-clip sets are byte-identical across
// shards, threads and re-runs.
#ifndef VAQ_CASCADE_PLANNER_H_
#define VAQ_CASCADE_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cascade/proxy_index.h"
#include "common/interval.h"
#include "common/status.h"
#include "offline/rvaq.h"

namespace vaq {
namespace cascade {

// One calibrated per-concept threshold.
struct ConceptThreshold {
  std::string concept_name;          // "act:..." / "obj:..."
  double threshold = 0.0;       // Keep clips with score >= threshold.
  double heldout_recall = 1.0;  // Held-out survival fraction.
};

struct CascadePlan {
  double recall_target = 1.0;
  // false: execute the exact path (no filters, no new counters).
  bool use_cascade = false;
  std::vector<ConceptThreshold> thresholds;
  double predicted_recall = 1.0;
  // Modeled inference bills over the planned scope, in simulated ms.
  double full_cost_ms = 0.0;
  double cascade_cost_ms = 0.0;
  int64_t clips_total = 0;
  int64_t clips_surviving = 0;
  // full / cascade; 1.0 for exact plans.
  double CostReduction() const;
  // Serialized size when the coordinator ships the plan to shards,
  // mirroring cluster::EntryWireBytes-style modeled accounting.
  int64_t WireBytes() const;
  // One-line human rendering for vaqctl / EXPLAIN output.
  std::string ToString() const;
};

// Cost model knobs: which expensive models the cascade is fronting.
struct PlannerOptions {
  detect::ModelProfile detector = detect::ModelProfile::MaskRcnn();
  detect::ModelProfile recognizer = detect::ModelProfile::I3d();
  detect::ModelProfile proxy = detect::ModelProfile::ProxyCnn();
};

class Planner {
 public:
  // `proxy` must outlive the planner and any PlanFilters built from its
  // plans.
  explicit Planner(const ProxySet* proxy, PlannerOptions options = {});

  // Plans one conjunctive query. kInvalidArgument when the query names
  // no concepts or τ is outside (0, 1]. A τ of 1.0, or a proxy set with
  // no coverage of the query, yields an exact plan.
  StatusOr<CascadePlan> Plan(const std::string& action,
                             const std::vector<std::string>& objects,
                             double recall_target) const;

  const ProxySet& proxy() const { return *proxy_; }

 private:
  const ProxySet* proxy_;
  PlannerOptions options_;
};

// The execution-side face of a plan: resolves, per video, the clips
// whose proxy scores clear every concept threshold. Surviving sets are
// materialized eagerly at construction (read-only afterwards, safe to
// share across shards). Videos with no proxy column for some queried
// concept are unconstrained — the cascade never silently drops a video
// it cannot score.
class PlanFilters : public offline::ClipFilterProvider {
 public:
  PlanFilters(const ProxySet* proxy, const CascadePlan& plan);

  const IntervalSet* SurvivingClips(
      const std::string& video) const override;

  int64_t clips_total() const { return clips_total_; }
  int64_t clips_surviving() const { return clips_surviving_; }

 private:
  std::map<std::string, IntervalSet> surviving_;
  int64_t clips_total_ = 0;
  int64_t clips_surviving_ = 0;
};

}  // namespace cascade
}  // namespace vaq

#endif  // VAQ_CASCADE_PLANNER_H_
