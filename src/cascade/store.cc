#include "cascade/store.h"

#include <utility>

#include "ckpt/serializer.h"
#include "obs/metrics.h"

namespace vaq {
namespace cascade {
namespace {

// Record tags within a proxy blob. Append-only within a format version.
constexpr uint32_t kTagHeader = 1;
constexpr uint32_t kTagColumn = 2;

void Count(const char* name) {
  obs::MetricRegistry::Global().GetCounter(name)->Increment(1);
}

std::string EncodeProxyIndex(const ProxyVideoIndex& index) {
  ckpt::Serializer serializer;
  ckpt::Payload header;
  header.PutString(index.video);
  header.PutI64(index.num_clips);
  header.PutF64(index.frames_per_clip);
  header.PutF64(index.shots_per_clip);
  header.PutU64(index.fingerprint);
  header.PutU32(static_cast<uint32_t>(index.columns.size()));
  serializer.Append(kTagHeader, header);
  for (const ProxyColumn& column : index.columns) {
    ckpt::Payload payload;
    payload.PutString(column.concept_name);
    payload.PutU32(static_cast<uint32_t>(column.scores.size()));
    for (const double score : column.scores) payload.PutF64(score);
    payload.PutU32(static_cast<uint32_t>(column.heldout_positive.size()));
    for (const double score : column.heldout_positive) payload.PutF64(score);
    serializer.Append(kTagColumn, payload);
  }
  return serializer.blob();
}

StatusOr<ProxyVideoIndex> DecodeProxyIndex(const std::string& blob) {
  VAQ_ASSIGN_OR_RETURN(ckpt::Deserializer reader,
                       ckpt::Deserializer::Open(blob));
  ProxyVideoIndex index;
  bool saw_header = false;
  uint32_t expected_columns = 0;
  ckpt::Record record;
  for (;;) {
    const Status status = reader.Next(&record);
    if (status.code() == StatusCode::kOutOfRange) break;
    VAQ_RETURN_IF_ERROR(status);
    ckpt::PayloadReader payload(record.payload);
    if (record.tag == kTagHeader) {
      VAQ_RETURN_IF_ERROR(payload.GetString(&index.video));
      VAQ_RETURN_IF_ERROR(payload.GetI64(&index.num_clips));
      VAQ_RETURN_IF_ERROR(payload.GetF64(&index.frames_per_clip));
      VAQ_RETURN_IF_ERROR(payload.GetF64(&index.shots_per_clip));
      VAQ_RETURN_IF_ERROR(payload.GetU64(&index.fingerprint));
      VAQ_RETURN_IF_ERROR(payload.GetU32(&expected_columns));
      saw_header = true;
    } else if (record.tag == kTagColumn) {
      ProxyColumn column;
      VAQ_RETURN_IF_ERROR(payload.GetString(&column.concept_name));
      uint32_t n = 0;
      VAQ_RETURN_IF_ERROR(payload.GetU32(&n));
      column.scores.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        VAQ_RETURN_IF_ERROR(payload.GetF64(&column.scores[i]));
      }
      VAQ_RETURN_IF_ERROR(payload.GetU32(&n));
      column.heldout_positive.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        VAQ_RETURN_IF_ERROR(payload.GetF64(&column.heldout_positive[i]));
      }
      index.columns.push_back(std::move(column));
    }
    // Unknown tags: skipped (checksum already verified by the reader).
  }
  if (!saw_header || index.columns.size() != expected_columns) {
    return Status::Corruption("proxy blob missing header or columns");
  }
  return index;
}

}  // namespace

std::string ProxyEntryName(const std::string& video) {
  return "proxy-" + video;
}

Status SaveProxyIndex(ckpt::Store* store, const ProxyVideoIndex& index) {
  const std::string entry = ProxyEntryName(index.video);
  if (!ckpt::ValidEntryName(entry)) {
    return Status::InvalidArgument("invalid proxy entry name: " + entry);
  }
  VAQ_RETURN_IF_ERROR(store->Put(entry, EncodeProxyIndex(index)));
  Count("vaq_ckpt_proxy_stores_total");
  return Status::OK();
}

StatusOr<ProxyVideoIndex> LoadProxyIndex(const ckpt::Store& store,
                                         const std::string& video,
                                         uint64_t expected_fingerprint) {
  VAQ_ASSIGN_OR_RETURN(const std::string blob,
                       store.Get(ProxyEntryName(video)));
  VAQ_ASSIGN_OR_RETURN(ProxyVideoIndex index, DecodeProxyIndex(blob));
  if (index.fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "proxy index for '" + video + "' is stale (fingerprint mismatch)");
  }
  Count("vaq_ckpt_proxy_loads_total");
  return index;
}

StatusOr<ProxyVideoIndex> LoadOrBuildProxyIndex(
    ckpt::Store* store, const std::string& video,
    const synth::Scenario& scenario, const detect::ModelProfile& profile,
    uint64_t seed) {
  const uint64_t fingerprint = ProxyFingerprint(profile, seed);
  if (store != nullptr) {
    auto loaded = LoadProxyIndex(*store, video, fingerprint);
    if (loaded.ok()) return loaded;
    if (loaded.status().code() != StatusCode::kNotFound) {
      // Stale or damaged: drop the entry and fall through to rebuild.
      Count("vaq_ckpt_proxy_invalidations_total");
      VAQ_RETURN_IF_ERROR(store->Delete(ProxyEntryName(video)));
    }
  }
  ProxyVideoIndex built = BuildProxyIndex(video, scenario, profile, seed);
  Count("vaq_ckpt_proxy_builds_total");
  if (store != nullptr) {
    VAQ_RETURN_IF_ERROR(SaveProxyIndex(store, built));
  }
  return built;
}

}  // namespace cascade
}  // namespace vaq
