// Persistence of the proxy index over ckpt::Store (DESIGN.md §14).
//
// Proxy scores are an ingest artifact: built once, reused by every
// query. When a checkpoint store is available the index is persisted as
// one entry per video ("proxy-<name>") using the standard ckpt blob
// framing, and LoadOrBuild turns later ingests into cheap loads.
//
// Invalidation: every blob carries the ProxyFingerprint of the (model
// profile, seed) that produced it, and the blob header pins the ckpt
// format version. A fingerprint mismatch — the proxy model changed, the
// seed changed, the score derivation was revised — deletes the stale
// entry and rebuilds. The entry name is deliberately outside the
// "snap-*"/"wal-*" namespaces, so ckpt::RecoveryDriver never interprets
// proxy entries (the same convention as serve's durable "config" entry).
//
// Persistence counters live under the vaq_ckpt_ prefix
// (vaq_ckpt_proxy_{builds,loads,stores,invalidations}_total): like every
// other durability counter they depend on crash/recovery schedules, not
// on query semantics, and the chaos oracles exclude that prefix.
#ifndef VAQ_CASCADE_STORE_H_
#define VAQ_CASCADE_STORE_H_

#include <cstdint>
#include <string>

#include "cascade/proxy_index.h"
#include "ckpt/store.h"
#include "common/status.h"

namespace vaq {
namespace cascade {

// The store entry name for a video's proxy index: "proxy-<video>".
std::string ProxyEntryName(const std::string& video);

// Serializes `index` into `store` under ProxyEntryName(index.video).
Status SaveProxyIndex(ckpt::Store* store, const ProxyVideoIndex& index);

// Loads a persisted index. kNotFound when absent; kFailedPrecondition
// when present but fingerprint-stale (the caller decides whether to
// rebuild); kCorruption on framing/checksum damage.
StatusOr<ProxyVideoIndex> LoadProxyIndex(const ckpt::Store& store,
                                         const std::string& video,
                                         uint64_t expected_fingerprint);

// The ingest-path entry point: load when fresh, otherwise build (and
// persist when `store` is non-null). A stale or damaged entry is
// deleted, rebuilt and re-persisted. With store == nullptr this is a
// plain in-memory build.
StatusOr<ProxyVideoIndex> LoadOrBuildProxyIndex(
    ckpt::Store* store, const std::string& video,
    const synth::Scenario& scenario, const detect::ModelProfile& profile,
    uint64_t seed);

}  // namespace cascade
}  // namespace vaq

#endif  // VAQ_CASCADE_STORE_H_
