#include "cascade/proxy_index.h"

#include <algorithm>
#include <cmath>

#include "ckpt/serializer.h"
#include "common/rng.h"
#include "video/layout.h"

namespace vaq {
namespace cascade {
namespace {

// Distinct salt per derivation so proxy scores never correlate with the
// detector noise drawn from the same master seed.
constexpr uint64_t kProxySalt = 0x70726f7879ULL;    // "proxy"
constexpr uint64_t kHeldoutSalt = 0x68656c64ULL;    // "held"
// Fraction of truth-positive clips reserved for threshold calibration.
constexpr double kHeldoutFraction = 0.3;
// Score shapes: positives concentrate high (u^0.4), negatives low
// (u^2.5), with overlapping supports — the proxy is cheap, not good.
constexpr double kPositiveExponent = 0.4;
constexpr double kNegativeExponent = 2.5;

// Version byte folded into the fingerprint: bump when the score
// derivation changes, so persisted indexes self-invalidate.
constexpr uint64_t kScoreDerivationVersion = 1;

uint64_t HashConcept(const std::string& concept_name) {
  return ckpt::Fnv1a64(concept_name.data(), concept_name.size());
}

// Clip-level presence of a concept: any truth frame inside the clip.
std::vector<bool> ClipIndicators(const IntervalSet& frames,
                                 const VideoLayout& layout) {
  std::vector<bool> present(static_cast<size_t>(layout.NumClips()), false);
  for (const Interval& iv : frames.intervals()) {
    if (iv.empty()) continue;
    const int64_t lo = layout.FrameToClip(iv.lo);
    const int64_t hi = layout.FrameToClip(iv.hi);
    for (int64_t clip = lo; clip <= hi && clip < layout.NumClips(); ++clip) {
      present[static_cast<size_t>(clip)] = true;
    }
  }
  return present;
}

ProxyColumn BuildColumn(const std::string& concept_name,
                        const IntervalSet& truth_frames,
                        const VideoLayout& layout, uint64_t seed) {
  ProxyColumn column;
  column.concept_name = concept_name;
  const std::vector<bool> present = ClipIndicators(truth_frames, layout);
  const uint64_t base = MixSeed(MixSeed(seed, kProxySalt),
                                HashConcept(concept_name));
  const uint64_t held_base = MixSeed(MixSeed(seed, kHeldoutSalt),
                                     HashConcept(concept_name));
  column.scores.reserve(present.size());
  for (size_t clip = 0; clip < present.size(); ++clip) {
    Rng rng(MixSeed(base, static_cast<uint64_t>(clip)));
    const double u = rng.UniformDouble();
    const double score =
        present[clip] ? 0.25 + 0.75 * std::pow(u, kPositiveExponent)
                      : 0.75 * std::pow(u, kNegativeExponent);
    column.scores.push_back(score);
    if (present[clip]) {
      Rng held(MixSeed(held_base, static_cast<uint64_t>(clip)));
      if (held.Bernoulli(kHeldoutFraction)) {
        column.heldout_positive.push_back(score);
      }
    }
  }
  std::sort(column.heldout_positive.begin(), column.heldout_positive.end());
  return column;
}

}  // namespace

std::string ActionConcept(const std::string& name) { return "act:" + name; }
std::string ObjectConcept(const std::string& name) { return "obj:" + name; }

const ProxyColumn* ProxyVideoIndex::Find(const std::string& concept_name) const {
  for (const ProxyColumn& column : columns) {
    if (column.concept_name == concept_name) return &column;
  }
  return nullptr;
}

uint64_t ProxyFingerprint(const detect::ModelProfile& profile,
                          uint64_t seed) {
  uint64_t fp = MixSeed(kScoreDerivationVersion,
                        static_cast<uint64_t>(ckpt::kFormatVersion));
  fp = MixSeed(fp, ckpt::Fnv1a64(profile.name.data(), profile.name.size()));
  // The profile fields that shape scores or costs, as exact bits.
  for (const double field : {profile.tpr, profile.fpr, profile.threshold,
                             profile.inference_ms}) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(field), "double is 64-bit");
    __builtin_memcpy(&bits, &field, sizeof(bits));
    fp = MixSeed(fp, bits);
  }
  return MixSeed(fp, seed);
}

ProxyVideoIndex BuildProxyIndex(const std::string& video,
                                const synth::Scenario& scenario,
                                const detect::ModelProfile& profile,
                                uint64_t seed) {
  const VideoLayout& layout = scenario.layout();
  const synth::GroundTruth& truth = scenario.truth();
  const Vocabulary& vocab = scenario.vocab();
  ProxyVideoIndex index;
  index.video = video;
  index.num_clips = layout.NumClips();
  index.frames_per_clip = static_cast<double>(layout.frames_per_clip());
  index.shots_per_clip = static_cast<double>(layout.frames_per_clip()) /
                         static_cast<double>(layout.frames_per_shot());
  index.fingerprint = ProxyFingerprint(profile, seed);
  for (ActionTypeId id = 0; id < vocab.num_action_types(); ++id) {
    index.columns.push_back(
        BuildColumn(ActionConcept(vocab.ActionTypeName(id)),
                    truth.ActionFrames(id), layout, seed));
  }
  for (ObjectTypeId id = 0; id < vocab.num_object_types(); ++id) {
    index.columns.push_back(
        BuildColumn(ObjectConcept(vocab.ObjectTypeName(id)),
                    truth.ObjectFrames(id), layout, seed));
  }
  std::sort(index.columns.begin(), index.columns.end(),
            [](const ProxyColumn& a, const ProxyColumn& b) {
              return a.concept_name < b.concept_name;
            });
  return index;
}

}  // namespace cascade
}  // namespace vaq
