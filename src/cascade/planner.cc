#include "cascade/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace vaq {
namespace cascade {
namespace {

std::vector<std::string> QueryConcepts(
    const std::string& action, const std::vector<std::string>& objects) {
  std::vector<std::string> concepts;
  if (!action.empty()) concepts.push_back(ActionConcept(action));
  for (const std::string& object : objects) {
    concepts.push_back(ObjectConcept(object));
  }
  return concepts;
}

// The modeled expensive-tier bill for one clip of `video`: every object
// concept pays the detector per frame, the action pays the recognizer
// per shot (the same occurrence-unit accounting as detect::ModelStats).
double ExpensiveClipMs(const ProxyVideoIndex& video, size_t num_objects,
                       bool has_action, const PlannerOptions& options) {
  double ms = static_cast<double>(num_objects) * video.frames_per_clip *
              options.detector.inference_ms;
  if (has_action) {
    ms += video.shots_per_clip * options.recognizer.inference_ms;
  }
  return ms;
}

}  // namespace

double CascadePlan::CostReduction() const {
  if (!use_cascade || cascade_cost_ms <= 0.0) return 1.0;
  return full_cost_ms / cascade_cost_ms;
}

int64_t CascadePlan::WireBytes() const {
  // Tag + τ + costs + counts, then per threshold its key and value.
  int64_t bytes = 32;
  for (const ConceptThreshold& t : thresholds) {
    bytes += static_cast<int64_t>(t.concept_name.size()) + 16;
  }
  return bytes;
}

std::string CascadePlan::ToString() const {
  char buffer[256];
  if (!use_cascade) {
    std::snprintf(buffer, sizeof(buffer), "exact(recall_target=%.6g)",
                  recall_target);
    return buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "cascade(recall_target=%.6g predicted_recall=%.6g "
                "clips=%lld/%lld cost_ms=%.6g->%.6g reduction=%.3gx",
                recall_target, predicted_recall,
                static_cast<long long>(clips_surviving),
                static_cast<long long>(clips_total), full_cost_ms,
                cascade_cost_ms, CostReduction());
  std::string out = buffer;
  for (const ConceptThreshold& t : thresholds) {
    std::snprintf(buffer, sizeof(buffer), " %s>=%.6g", t.concept_name.c_str(),
                  t.threshold);
    out += buffer;
  }
  out += ")";
  return out;
}

Planner::Planner(const ProxySet* proxy, PlannerOptions options)
    : proxy_(proxy), options_(options) {
  VAQ_CHECK(proxy != nullptr);
}

StatusOr<CascadePlan> Planner::Plan(const std::string& action,
                                    const std::vector<std::string>& objects,
                                    double recall_target) const {
  if (!(recall_target > 0.0) || recall_target > 1.0) {
    return Status::InvalidArgument("recall target must be in (0, 1]");
  }
  const std::vector<std::string> concepts = QueryConcepts(action, objects);
  if (concepts.empty()) {
    return Status::InvalidArgument("cascade query names no concepts");
  }

  CascadePlan plan;
  plan.recall_target = recall_target;
  const size_t num_objects = objects.size();
  const bool has_action = !action.empty();
  for (const auto& [name, video] : *proxy_) {
    (void)name;
    plan.clips_total += video.num_clips;
    plan.full_cost_ms +=
        static_cast<double>(video.num_clips) *
        ExpensiveClipMs(video, num_objects, has_action, options_);
  }
  plan.clips_surviving = plan.clips_total;
  plan.cascade_cost_ms = plan.full_cost_ms;
  if (recall_target >= 1.0 || proxy_->empty()) {
    return plan;  // Exact: τ=1.0 admits no approximation.
  }

  // Per-concept targets: the conjunction survives iff every concept
  // does, and concept noise is independent, so τ^(1/n) each.
  const double per_concept =
      std::pow(recall_target,
               1.0 / static_cast<double>(concepts.size()));
  for (const std::string& concept_name : concepts) {
    std::vector<double> pooled;
    for (const auto& [name, video] : *proxy_) {
      (void)name;
      const ProxyColumn* column = video.Find(concept_name);
      if (column == nullptr) continue;
      pooled.insert(pooled.end(), column->heldout_positive.begin(),
                    column->heldout_positive.end());
    }
    ConceptThreshold threshold;
    threshold.concept_name = concept_name;
    if (!pooled.empty()) {
      std::sort(pooled.begin(), pooled.end());
      const auto m = static_cast<int64_t>(pooled.size());
      int64_t idx = static_cast<int64_t>(
          std::floor((1.0 - per_concept) * static_cast<double>(m)));
      idx = std::min(std::max<int64_t>(idx, 0), m - 1);
      threshold.threshold = pooled[static_cast<size_t>(idx)];
      threshold.heldout_recall =
          static_cast<double>(m - idx) / static_cast<double>(m);
    }
    plan.thresholds.push_back(threshold);
  }
  plan.predicted_recall = 1.0;
  for (const ConceptThreshold& t : plan.thresholds) {
    plan.predicted_recall *= t.heldout_recall;
  }

  // Count survivors and bill the cascade: one proxy call per clip
  // (already paid at ingest, charged here to keep the cost model
  // honest) plus the expensive tier on survivors only.
  plan.clips_surviving = 0;
  plan.cascade_cost_ms = 0.0;
  for (const auto& [name, video] : *proxy_) {
    (void)name;
    const double expensive =
        ExpensiveClipMs(video, num_objects, has_action, options_);
    plan.cascade_cost_ms +=
        static_cast<double>(video.num_clips) * options_.proxy.inference_ms;
    std::vector<const ProxyColumn*> columns;
    bool covered = true;
    for (size_t i = 0; i < plan.thresholds.size(); ++i) {
      const ProxyColumn* column =
          video.Find(plan.thresholds[i].concept_name);
      if (column == nullptr ||
          static_cast<int64_t>(column->scores.size()) != video.num_clips) {
        covered = false;
        break;
      }
      columns.push_back(column);
    }
    if (!covered) {
      // No proxy signal for some concept: the video stays unconstrained.
      plan.clips_surviving += video.num_clips;
      plan.cascade_cost_ms +=
          static_cast<double>(video.num_clips) * expensive;
      continue;
    }
    int64_t surviving = 0;
    for (int64_t clip = 0; clip < video.num_clips; ++clip) {
      bool keep = true;
      for (size_t i = 0; i < columns.size(); ++i) {
        if (columns[i]->scores[static_cast<size_t>(clip)] <
            plan.thresholds[i].threshold) {
          keep = false;
          break;
        }
      }
      if (keep) ++surviving;
    }
    plan.clips_surviving += surviving;
    plan.cascade_cost_ms += static_cast<double>(surviving) * expensive;
  }

  // The cost-based decision proper: cascade only when it actually wins.
  plan.use_cascade = plan.cascade_cost_ms < plan.full_cost_ms;
  if (!plan.use_cascade) {
    plan.clips_surviving = plan.clips_total;
    plan.cascade_cost_ms = plan.full_cost_ms;
    plan.predicted_recall = 1.0;
  }
  return plan;
}

PlanFilters::PlanFilters(const ProxySet* proxy, const CascadePlan& plan) {
  VAQ_CHECK(proxy != nullptr);
  for (const auto& [name, video] : *proxy) {
    clips_total_ += video.num_clips;
    if (!plan.use_cascade) {
      clips_surviving_ += video.num_clips;
      continue;
    }
    std::vector<const ProxyColumn*> columns;
    bool covered = true;
    for (const ConceptThreshold& t : plan.thresholds) {
      const ProxyColumn* column = video.Find(t.concept_name);
      if (column == nullptr ||
          static_cast<int64_t>(column->scores.size()) != video.num_clips) {
        covered = false;
        break;
      }
      columns.push_back(column);
    }
    if (!covered) {
      clips_surviving_ += video.num_clips;  // Unconstrained video.
      continue;
    }
    std::vector<bool> keep(static_cast<size_t>(video.num_clips), true);
    for (size_t i = 0; i < columns.size(); ++i) {
      const double threshold = plan.thresholds[i].threshold;
      for (int64_t clip = 0; clip < video.num_clips; ++clip) {
        if (columns[i]->scores[static_cast<size_t>(clip)] < threshold) {
          keep[static_cast<size_t>(clip)] = false;
        }
      }
    }
    IntervalSet surviving = IntervalSet::FromIndicators(keep);
    clips_surviving_ += surviving.TotalLength();
    surviving_.emplace(name, std::move(surviving));
  }
}

const IntervalSet* PlanFilters::SurvivingClips(
    const std::string& video) const {
  const auto it = surviving_.find(video);
  return it == surviving_.end() ? nullptr : &it->second;
}

}  // namespace cascade
}  // namespace vaq
