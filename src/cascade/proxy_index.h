// Ingest-time proxy score index (DESIGN.md §14).
//
// The cascade subsystem's data tier: for every (clip, concept) pair of a
// video, one approximate score from the cheap proxy detector
// (detect::ModelProfile::ProxyCnn), computed ONCE at ingest and never at
// query time. This is the Focus/BlazeIt architecture — an offline pass
// with a tiny specialized model buys the planner a per-concept signal it
// can threshold against a user-supplied recall target, so the expensive
// detectors only run on clips the proxy could not rule out.
//
// Alongside the scores each column carries a *held-out calibration
// sample*: the proxy scores of a seeded subset of truth-positive clips.
// The planner derives score thresholds from these order statistics
// (planner.h); keeping the sample inside the index means calibration
// survives persistence and is identical on every shard.
//
// Determinism: every score is a pure function of (seed, concept, clip),
// independent of sharding, thread count and visit order, so cascade
// plans — and therefore pruned result sets — are byte-identical across
// cluster layouts.
#ifndef VAQ_CASCADE_PROXY_INDEX_H_
#define VAQ_CASCADE_PROXY_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "detect/model_profile.h"
#include "synth/scenario.h"

namespace vaq {
namespace cascade {

// Concept keys use the query-layer spelling: "act:running", "obj:dog".
std::string ActionConcept(const std::string& name);
std::string ObjectConcept(const std::string& name);

// One concept's proxy scores across a video.
struct ProxyColumn {
  std::string concept_name;
  std::vector<double> scores;            // One per clip, in [0, 1).
  std::vector<double> heldout_positive;  // Sorted ascending.
};

// The per-video proxy index: one column per vocabulary concept, plus the
// clip geometry the planner needs for modeled-cost accounting.
struct ProxyVideoIndex {
  std::string video;
  int64_t num_clips = 0;
  double frames_per_clip = 0.0;
  double shots_per_clip = 0.0;
  // Invalidation key: proxy model profile + builder seed + format. A
  // persisted index whose fingerprint no longer matches is stale and
  // must be rebuilt (store.h).
  uint64_t fingerprint = 0;
  std::vector<ProxyColumn> columns;  // Sorted by concept.

  // nullptr when the video has no column for `concept`.
  const ProxyColumn* Find(const std::string& concept_name) const;
};

// A repository-wide proxy tier, keyed by video name (the same keys as
// offline::Repository).
using ProxySet = std::map<std::string, ProxyVideoIndex>;

// The invalidation fingerprint of (profile, seed) under the current
// index format.
uint64_t ProxyFingerprint(const detect::ModelProfile& profile,
                          uint64_t seed);

// The ingest-time pass: scores every (clip, concept) of `scenario` with
// the simulated proxy detector. Scores are drawn per (seed, concept,
// clip); truth-positive clips score high with a heavy low tail, absent
// clips score low with a heavy high tail — the overlap IS the proxy's
// inaccuracy, and the held-out sample measures it.
ProxyVideoIndex BuildProxyIndex(const std::string& video,
                                const synth::Scenario& scenario,
                                const detect::ModelProfile& profile,
                                uint64_t seed);

}  // namespace cascade
}  // namespace vaq

#endif  // VAQ_CASCADE_PROXY_INDEX_H_
