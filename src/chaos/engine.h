// The chaos sweep driver: trials, shrinking, reproducers, replay.
//
// `RunChaos` executes N trials, each a pure function of (seed, trial):
// draw a scenario (chaos/scenario.h), draw a fault schedule
// (chaos/schedule.h), run the oracles (chaos/trial.h). The sweep stops
// at the first oracle violation, delta-debugs the offending schedule
// down to a 1-minimal reproducer (chaos/shrink.h), re-runs the minimal
// schedule to confirm it still fails with the same violations, and
// packages the whole thing as a ReplaySpec JSON document — paste it
// into `vaqctl chaos --replay repro.json` and the failure reproduces
// byte-identically on any machine, because nothing in a trial reads a
// wall clock or an OS RNG.
//
// `RunReplay` is the other direction: regenerate the scenario from the
// spec's (seed, trial), substitute its (possibly shrunk, possibly
// hand-edited) event list for the generated schedule, run once.
#ifndef VAQ_CHAOS_ENGINE_H_
#define VAQ_CHAOS_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "chaos/schedule.h"
#include "chaos/trial.h"
#include "common/status.h"

namespace vaq {
namespace chaos {

struct ChaosOptions {
  int64_t trials = 20;
  uint64_t seed = 1;
  // Arm the injected canary bug (TrialOptions::canary) — the harness's
  // own acceptance test: the sweep MUST fail, shrink to a single crash
  // event and replay identically.
  bool canary = false;
  // Shrink a failing schedule before reporting (disable to see the raw
  // draw).
  bool shrink = true;
  int64_t cluster_max_steps = 200000;
  // Progress callback for CLI output; null = silent.
  void (*progress)(const TrialResult&) = nullptr;
};

// One sweep's outcome. `failure` is empty when every trial passed.
struct ChaosReport {
  int64_t trials_run = 0;
  std::map<std::string, int64_t> trials_per_phase;  // Keyed by PhaseName.
  // Union of every trial's coverage counters (chaos/trial.h).
  std::map<std::string, int64_t> coverage;

  // First failing trial, when any.
  std::vector<std::string> failure;  // Its oracle violations.
  int64_t failed_trial = -1;
  Phase failed_phase = Phase::kStanding;
  int64_t original_events = 0;  // Schedule size before shrinking.
  int64_t shrink_runs = 0;      // Trials spent shrinking.
  ReplaySpec reproducer;        // Minimal schedule, ready to serialize.
  std::string replay_json;      // ReplayToJson(reproducer).
  // The minimal schedule re-run: true when its violations matched the
  // original failure's exactly (the reproducer is faithful).
  bool replay_confirmed = false;

  bool failed() const { return !failure.empty(); }
};

// Runs the sweep. A non-OK status means the harness itself broke (an
// ingest failed, a store call errored) — distinct from an oracle
// violation, which is reported through the ChaosReport.
StatusOr<ChaosReport> RunChaos(const ChaosOptions& options);

// Re-runs one trial from a reproducer spec. The report carries the
// trial's violations (if it still fails) and coverage; shrinking is not
// re-applied (the spec's event list is already the schedule of record).
StatusOr<ChaosReport> RunReplay(const ReplaySpec& spec,
                                const ChaosOptions& options);

}  // namespace chaos
}  // namespace vaq

#endif  // VAQ_CHAOS_ENGINE_H_
