#include "chaos/schedule.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <set>

#include "common/rng.h"

namespace vaq {
namespace chaos {
namespace {

constexpr uint64_t kScheduleSalt = 0xd1b54a32d192ed03ULL;

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --- Minimal JSON reader for the replay document ------------------------
// Strict recursive descent over exactly the shapes ReplayToJson emits
// (objects, arrays, strings without escapes beyond \" and \\, numbers,
// booleans). Anything else is a parse error, never undefined behavior.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : text_(text) {}

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Err(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  StatusOr<std::string> ParseString() {
    VAQ_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') return Err("unsupported escape");
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return Err("unterminated string");
    ++pos_;  // Closing quote.
    return out;
  }

  StatusOr<std::string> NumberToken() {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a number");
    return text_.substr(start, pos_ - start);
  }

  StatusOr<double> ParseNumber() {
    VAQ_ASSIGN_OR_RETURN(std::string token, NumberToken());
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    return value;
  }

  // Integers are parsed from the token, not through double, so 64-bit
  // seeds round-trip exactly.
  StatusOr<int64_t> ParseI64() {
    VAQ_ASSIGN_OR_RETURN(std::string token, NumberToken());
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return Err("malformed integer");
    return static_cast<int64_t>(value);
  }

  StatusOr<uint64_t> ParseU64() {
    VAQ_ASSIGN_OR_RETURN(std::string token, NumberToken());
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return Err("malformed integer");
    return static_cast<uint64_t>(value);
  }

  StatusOr<bool> ParseBool() {
    SkipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    return Err("expected true/false");
  }

  Status ExpectEnd() {
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return Status::OK();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("chaos replay JSON: " + what +
                                   " at offset " + std::to_string(pos_));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<ChaosEvent> ParseEvent(MiniJson& in) {
  VAQ_RETURN_IF_ERROR(in.Expect('{'));
  ChaosEvent event;
  bool have_kind = false;
  bool first = true;
  while (!in.Peek('}')) {
    if (!first) VAQ_RETURN_IF_ERROR(in.Expect(','));
    first = false;
    VAQ_ASSIGN_OR_RETURN(std::string key, in.ParseString());
    VAQ_RETURN_IF_ERROR(in.Expect(':'));
    if (key == "kind") {
      VAQ_ASSIGN_OR_RETURN(std::string name, in.ParseString());
      VAQ_ASSIGN_OR_RETURN(event.kind, EventKindFromName(name));
      have_kind = true;
    } else if (key == "at_advance") {
      VAQ_ASSIGN_OR_RETURN(event.at_advance, in.ParseI64());
    } else if (key == "host") {
      VAQ_ASSIGN_OR_RETURN(event.host, in.ParseI64());
    } else if (key == "from_ms") {
      VAQ_ASSIGN_OR_RETURN(event.from_ms, in.ParseNumber());
    } else if (key == "to_ms") {
      VAQ_ASSIGN_OR_RETURN(event.to_ms, in.ParseNumber());
    } else {
      return Status::InvalidArgument("chaos replay JSON: unknown event key '" +
                                     key + "'");
    }
  }
  VAQ_RETURN_IF_ERROR(in.Expect('}'));
  if (!have_kind) {
    return Status::InvalidArgument("chaos replay JSON: event without a kind");
  }
  return event;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kCrashRestart:
      return "crash_restart";
    case EventKind::kTornAdvance:
      return "torn_advance";
    case EventKind::kCorruptSnapshot:
      return "corrupt_snapshot";
    case EventKind::kForceCheckpoint:
      return "force_checkpoint";
    case EventKind::kNodeKill:
      return "node_kill";
    case EventKind::kNetPartition:
      return "net_partition";
  }
  return "unknown";
}

StatusOr<EventKind> EventKindFromName(const std::string& name) {
  for (const EventKind kind :
       {EventKind::kCrashRestart, EventKind::kTornAdvance,
        EventKind::kCorruptSnapshot, EventKind::kForceCheckpoint,
        EventKind::kNodeKill, EventKind::kNetPartition}) {
    if (name == EventKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown chaos event kind '" + name + "'");
}

Schedule GenerateSchedule(const TrialScenario& s, uint64_t seed) {
  Rng rng(MixSeed(MixSeed(seed, kScheduleSalt),
                  static_cast<uint64_t>(s.trial)));
  Schedule schedule;
  switch (s.phase) {
    case Phase::kStanding: {
      if (s.advances < 3) break;
      // Crash points: distinct advances, some torn (crash between WAL
      // append and engine apply).
      const int64_t crashes = rng.UniformInt(int64_t{0}, int64_t{2});
      std::set<int64_t> at;
      for (int64_t i = 0; i < crashes; ++i) {
        at.insert(rng.UniformInt(int64_t{1}, s.advances - 1));
      }
      for (const int64_t a : at) {
        ChaosEvent e;
        e.kind = rng.Bernoulli(0.3) ? EventKind::kTornAdvance
                                    : EventKind::kCrashRestart;
        e.at_advance = a;
        schedule.push_back(e);
      }
      if (rng.Bernoulli(0.4)) {
        ChaosEvent e;
        e.kind = EventKind::kCorruptSnapshot;
        e.at_advance = rng.UniformInt(int64_t{1}, s.advances - 1);
        schedule.push_back(e);
      }
      if (rng.Bernoulli(0.3)) {
        ChaosEvent e;
        e.kind = EventKind::kForceCheckpoint;
        e.at_advance = rng.UniformInt(int64_t{1}, s.advances - 1);
        schedule.push_back(e);
      }
      break;
    }
    case Phase::kCluster: {
      const int hosts =
          s.num_shards + s.num_shards * s.num_replicas;
      const int64_t kills = rng.UniformInt(int64_t{0}, int64_t{3});
      for (int64_t i = 0; i < kills; ++i) {
        ChaosEvent e;
        e.kind = EventKind::kNodeKill;
        e.host = rng.UniformInt(int64_t{0}, int64_t{hosts - 1});
        e.from_ms = rng.UniformDouble(0.0, 150.0);
        e.to_ms = e.from_ms + rng.UniformDouble(10.0, 80.0);
        schedule.push_back(e);
      }
      if (rng.Bernoulli(0.4)) {
        ChaosEvent e;
        e.kind = EventKind::kNetPartition;
        e.from_ms = rng.UniformDouble(0.0, 50.0);
        e.to_ms = e.from_ms + rng.UniformDouble(5.0, 25.0);
        schedule.push_back(e);
      }
      break;
    }
    case Phase::kServe:
      // The serve oracle is thread-count determinism; its adversary is
      // the scheduler, not a fault schedule.
      break;
  }
  // Canonical order: standing events by advance (stable for ties),
  // cluster windows by start.
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     if (a.at_advance != b.at_advance) {
                       return a.at_advance < b.at_advance;
                     }
                     return a.from_ms < b.from_ms;
                   });
  return schedule;
}

std::string ReplayToJson(const ReplaySpec& spec) {
  std::string out = "{\"chaos_replay\": 1, \"seed\": " +
                    std::to_string(spec.seed) +
                    ", \"trial\": " + std::to_string(spec.trial) +
                    ", \"canary\": " + (spec.canary ? "true" : "false") +
                    ", \"events\": [";
  for (size_t i = 0; i < spec.events.size(); ++i) {
    const ChaosEvent& e = spec.events[i];
    if (i > 0) out += ", ";
    out += "{\"kind\": \"" + std::string(EventKindName(e.kind)) + "\"";
    switch (e.kind) {
      case EventKind::kCrashRestart:
      case EventKind::kTornAdvance:
      case EventKind::kCorruptSnapshot:
      case EventKind::kForceCheckpoint:
        out += ", \"at_advance\": " + std::to_string(e.at_advance);
        break;
      case EventKind::kNodeKill:
        out += ", \"host\": " + std::to_string(e.host);
        out += ", \"from_ms\": " + FmtDouble(e.from_ms);
        out += ", \"to_ms\": " + FmtDouble(e.to_ms);
        break;
      case EventKind::kNetPartition:
        out += ", \"from_ms\": " + FmtDouble(e.from_ms);
        out += ", \"to_ms\": " + FmtDouble(e.to_ms);
        break;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

StatusOr<ReplaySpec> ReplayFromJson(const std::string& json) {
  MiniJson in(json);
  VAQ_RETURN_IF_ERROR(in.Expect('{'));
  ReplaySpec spec;
  bool have_version = false;
  bool first = true;
  while (!in.Peek('}')) {
    if (!first) VAQ_RETURN_IF_ERROR(in.Expect(','));
    first = false;
    VAQ_ASSIGN_OR_RETURN(std::string key, in.ParseString());
    VAQ_RETURN_IF_ERROR(in.Expect(':'));
    if (key == "chaos_replay") {
      VAQ_ASSIGN_OR_RETURN(double v, in.ParseNumber());
      if (v != 1.0) {
        return Status::InvalidArgument("unsupported chaos replay version");
      }
      have_version = true;
    } else if (key == "seed") {
      VAQ_ASSIGN_OR_RETURN(spec.seed, in.ParseU64());
    } else if (key == "trial") {
      VAQ_ASSIGN_OR_RETURN(spec.trial, in.ParseI64());
    } else if (key == "canary") {
      VAQ_ASSIGN_OR_RETURN(spec.canary, in.ParseBool());
    } else if (key == "events") {
      VAQ_RETURN_IF_ERROR(in.Expect('['));
      while (!in.Peek(']')) {
        if (!spec.events.empty()) VAQ_RETURN_IF_ERROR(in.Expect(','));
        VAQ_ASSIGN_OR_RETURN(ChaosEvent event, ParseEvent(in));
        spec.events.push_back(event);
      }
      VAQ_RETURN_IF_ERROR(in.Expect(']'));
    } else {
      return Status::InvalidArgument("chaos replay JSON: unknown key '" +
                                     key + "'");
    }
  }
  VAQ_RETURN_IF_ERROR(in.Expect('}'));
  VAQ_RETURN_IF_ERROR(in.ExpectEnd());
  if (!have_version) {
    return Status::InvalidArgument(
        "chaos replay JSON: missing chaos_replay version");
  }
  return spec;
}

}  // namespace chaos
}  // namespace vaq
