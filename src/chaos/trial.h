// One chaos trial: reference run vs. tortured run, oracle verdicts.
//
// RunTrial executes the trial's phase twice. The *reference* run sees
// the scenario's environment faults (deterministic model degradation)
// but none of the schedule's adversarial events; the *chaos* run
// additionally suffers every schedule event — crash/recover cycles,
// torn advances, snapshot corruption, node kills, partitions — each of
// which the stack documents as result-transparent. The oracles check
// that documentation:
//
//   1. Byte-identity: described results and logical vaq_* metrics
//      (vaq_ckpt_* excluded — durability bookkeeping legitimately
//      differs) match the reference exactly.
//   2. Progress: the session ends having advanced exactly the planned
//      number of clips; recovery restores positions exactly (a torn
//      advance's WAL record counts once, on replay). The cluster gather
//      runs under a deterministic step-budget watchdog, so a hang or
//      livelock is a kDeadlineExceeded *failure*, not a test timeout.
//   3. Status hygiene: every operation returns OK, except a cluster
//      query under availability faults, which may return the documented
//      kUnavailable. Anything else — kInternal, kDeadlineExceeded, a
//      silent wrong answer — is a violation.
//   4. Recovery-counter consistency: each recovery increments
//      vaq_ckpt_recoveries_total exactly once; vaq_ckpt_corrupt_total
//      equals the snapshots the recovery actually rejected, and a
//      corrupted newest snapshot MUST be rejected (never silently
//      restored).
//
// Oracle breaches are reported as `violations` strings (stable text —
// shrinking compares them), not as error statuses; a non-OK RunTrial
// status means the harness itself could not run the trial.
#ifndef VAQ_CHAOS_TRIAL_H_
#define VAQ_CHAOS_TRIAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/scenario.h"
#include "chaos/schedule.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "synth/scenario.h"

namespace vaq {
namespace chaos {

struct TrialOptions {
  // The test-only injected bug: after every successful recovery the
  // session re-applies one extra clip advance without accounting for it
  // — exactly the double-apply a log-after-apply WAL would cause. The
  // byte-identity and progress oracles must catch it, and shrinking
  // must reduce any schedule that triggers it to a single crash event.
  bool canary = false;
  // Cluster watchdog budget (ClusterOptions::max_steps).
  int64_t cluster_max_steps = 200000;
};

struct TrialResult {
  int64_t trial = 0;
  Phase phase = Phase::kStanding;
  std::vector<std::string> violations;  // Empty = every oracle held.
  // Fault/event coverage accounting, merged across trials by RunChaos
  // and histogrammed by bench_chaos. Keys: "event.<kind>" (schedule
  // events executed), "event.skipped.<kind>", "env.<fault>" (scheduled
  // environment fault points inside the trial horizon), "net.*" /
  // "failovers" (observed transport faults).
  std::map<std::string, int64_t> coverage;

  bool failed() const { return !violations.empty(); }
};

// Cross-trial cache of ingested video indexes and generated scenarios.
// ChaosScenario(index, minutes) is a pure function and model seeds are
// drawn from a tiny set, so a 200-trial sweep touches a handful of
// distinct (index, minutes, model_seed) ingests; caching them is what
// keeps a sweep CI-sized. Not thread-safe.
class IndexCache {
 public:
  const synth::Scenario& Scenario(int index, int minutes);
  StatusOr<const storage::VideoIndex*> Index(int index, int minutes,
                                             uint64_t model_seed);

 private:
  std::map<std::pair<int, int>, synth::Scenario> scenarios_;
  std::map<std::tuple<int, int, uint64_t>, storage::VideoIndex> indexes_;
};

// Runs one trial. Resets the global metric registry (both runs start
// from a clean "process"); callers own no metric state across this
// call.
StatusOr<TrialResult> RunTrial(const TrialScenario& scenario,
                               const Schedule& schedule,
                               const TrialOptions& options,
                               IndexCache* cache);

}  // namespace chaos
}  // namespace vaq

#endif  // VAQ_CHAOS_TRIAL_H_
