// Whole-stack chaos scenarios.
//
// A chaos *trial* torture-tests one randomly drawn slice of the stack:
// a repository/stream shape, a query mix, a cluster layout or a
// checkpoint cadence — all derived as a pure function of (sweep seed,
// trial index), so any trial from any 200-trial nightly sweep can be
// regenerated from two integers. The scenario describes the *benign*
// world: which streams exist, which queries run, which environment
// fault rates (model timeouts, dropped clips, …) both the reference run
// and the chaos run share identically. The *adversarial* part — crash
// points, node kills, partitions, corruption — lives in the schedule
// (chaos/schedule.h) and is applied to the chaos run only.
//
// Scenarios are deliberately small (1–2 minute streams, 18–36 clips):
// the value of a chaos sweep is trials × diversity, not minutes of one
// video, and 200 trials must fit a CI job.
#ifndef VAQ_CHAOS_SCENARIO_H_
#define VAQ_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/partition.h"
#include "fault/fault_plan.h"
#include "synth/scenario.h"

namespace vaq {
namespace chaos {

// Which front door the trial drives.
enum class Phase {
  kStanding = 0,  // Durable standing queries: crash/recover/corrupt.
  kCluster = 1,   // Scatter–gather ranked: kills/partitions/failover.
  kServe = 2,     // Batch serving: thread-count determinism under faults.
};

const char* PhaseName(Phase phase);

// The chaos-owned scenario family, structured like the demo family
// (tools::DemoScenarioSpec: "running" + coupled "dog", index > 0 adds
// an uncoupled "car") but `minutes` long. Pure function of its
// arguments; the same (index, minutes) is byte-identical forever, which
// is what lets trials share ingested indexes through an IndexCache.
synth::ScenarioSpec ChaosScenarioSpec(int index, int minutes);
synth::Scenario ChaosScenario(int index, int minutes);

// One trial's drawn configuration.
struct TrialScenario {
  int64_t trial = 0;
  Phase phase = Phase::kStanding;
  int minutes = 1;  // Length of every stream/video in the trial.

  // Standing + serve.
  int num_streams = 1;
  int num_queries = 2;
  uint64_t model_seed = 1;  // Base; stream/video i uses model_seed + i.

  // Standing.
  int64_t advances = 8;  // Total round-robin clip advances.
  int64_t snapshot_every_clips = 5;

  // Serve.
  int threads = 2;          // Chaos-side worker count (reference runs 0).
  bool with_repository = false;  // Mix ranked statements into the batch.
  // When > 0, submissions are tenant-tagged round-robin over "t0".."tN-1"
  // through the multi-tenant front door (Submit(sql, tenant)), with
  // quotas sized to fit the workload — sheds are scheduling-dependent at
  // threads > 0, so chaos trials exercise the tagged path and its
  // vaq_tenant_* accounting, not the shed path (tests/traffic_test.cc
  // covers shedding at threads = 0). 0 keeps the legacy untagged path.
  int tenants = 0;

  // Cascade (all phases). Below 1.0, part of the workload carries a
  // WITH RECALL clause — standing queries plan proxy cascades over their
  // streams, ranked serve statements exercise the exact fallback — and
  // cluster trials pre-filter both the single-node reference and the
  // coordinator run through one shared proxy plan, so every oracle
  // (byte-identity, status hygiene, recovery accounting) covers the
  // cascade subsystem. Exactly 1.0 keeps the trial on the exact path.
  double recall = 1.0;

  // Cluster.
  int num_videos = 2;
  int num_shards = 2;
  int num_replicas = 1;
  cluster::PartitionScheme scheme = cluster::PartitionScheme::kHash;
  int batch_size = 2;
  int64_t k = 3;
  // Elastic layout churn before the chaos queries run: 0 = static,
  // 1 = split the first splittable shard, 2 = split then merge an
  // adjacent pair back. The merged-vs-reference oracle then checks
  // result bytes are layout-invariant under faults.
  int rebalance = 0;

  // Environment fault rates, shared byte-identically by the reference
  // and chaos runs (standing/serve); for cluster trials the rates drive
  // net drops/dups and rate-based node outages in the chaos run only
  // (the single-node reference never touches the network).
  fault::FaultSpec env;
  uint64_t env_seed = 1;
};

// Draws trial `trial` of sweep `seed`. Pure: independent of any other
// trial and of the schedule generator's randomness, so a replay spec
// can regenerate the scenario from (seed, trial) alone.
TrialScenario MakeTrialScenario(uint64_t seed, int64_t trial);

// The standing/serve workload over the trial's streams "s0".."sN-1":
// conjunctive, object-only and (on streams that carry "car") CNF online
// statements, plus ranked top-k statements against repository "lib"
// when `with_repository`. Mirrors tools::DemoWorkload's shapes at chaos
// scale. When `scenario.recall` < 1.0, a deterministic subset of the
// statements (every ranked statement and every odd-numbered online one,
// CNF included — the exact-fallback path) carries a matching WITH
// RECALL clause.
std::vector<std::string> ChaosWorkload(const TrialScenario& scenario);

// The repository name serve-phase trials register.
inline constexpr char kChaosRepositoryName[] = "lib";

}  // namespace chaos
}  // namespace vaq

#endif  // VAQ_CHAOS_SCENARIO_H_
