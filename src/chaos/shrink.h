// Schedule shrinking by delta debugging.
//
// When a trial fails an oracle, the raw schedule is rarely the story:
// most of its events are result-transparent noise around the one or two
// that actually break the invariant. `DdminSchedule` is Zeller's ddmin
// over the event list — try ever-finer chunk subsets and their
// complements, keep any smaller schedule that still fails, stop at
// 1-minimality (removing any single remaining event makes the failure
// vanish). The predicate re-runs the whole trial, so shrinking is exact,
// not heuristic; determinism of the stack is what makes it converge.
#ifndef VAQ_CHAOS_SHRINK_H_
#define VAQ_CHAOS_SHRINK_H_

#include <cstdint>
#include <functional>

#include "chaos/schedule.h"
#include "common/status.h"

namespace vaq {
namespace chaos {

// Returns whether the trial still fails under `schedule`. An error
// status aborts the shrink (harness trouble, not an oracle verdict).
using ScheduleFails = std::function<StatusOr<bool>(const Schedule&)>;

struct ShrinkResult {
  Schedule minimal;
  int64_t runs = 0;  // Predicate evaluations spent.
};

// `failing` must fail under `fails` (the caller just observed it). The
// result is 1-minimal; for an empty or single-event schedule it is the
// input itself.
StatusOr<ShrinkResult> DdminSchedule(const Schedule& failing,
                                     const ScheduleFails& fails);

}  // namespace chaos
}  // namespace vaq

#endif  // VAQ_CHAOS_SHRINK_H_
