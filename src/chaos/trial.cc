#include "chaos/trial.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cascade/planner.h"
#include "cascade/store.h"
#include "ckpt/store.h"
#include "cluster/coordinator.h"
#include "detect/models.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "offline/ingest.h"
#include "offline/repository.h"
#include "offline/scoring.h"
#include "serve/server.h"

namespace vaq {
namespace chaos {
namespace {

std::string SourceName(int64_t i) { return "s" + std::to_string(i); }

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// Byte-faithful rendering of a merged ranked top list (the comparison
// format the cluster determinism tests established).
std::string DescribeTop(
    const std::vector<offline::RepositoryRankedSequence>& top) {
  std::ostringstream os;
  for (const offline::RepositoryRankedSequence& entry : top) {
    os << entry.video << " " << entry.sequence.clips.ToString()
       << " lb=" << Fmt(entry.sequence.lower_bound)
       << " ub=" << Fmt(entry.sequence.upper_bound)
       << " exact=" << entry.sequence.has_exact << "/"
       << Fmt(entry.sequence.has_exact ? entry.sequence.exact_score : 0.0)
       << "\n";
  }
  return os.str();
}

std::string NonCkptMetrics() {
  // vaq_ckpt_* legitimately differs between a run that crashed and one
  // that did not (that *is* the durability work); everything else is
  // logical and must match byte for byte. vaq_log_* is also out: the
  // rate-limited log suppression counter feeds off per-call-site static
  // counters that span both runs of a trial, so its split between them
  // is an artifact of process history, not of either run.
  return obs::ExportPrometheus(obs::ExcludeSnapshot(
      obs::MetricRegistry::Global().TakeSnapshot(),
      {"vaq_ckpt_", "vaq_log_"}));
}

// One run's comparable output.
struct RunOut {
  std::string described;
  std::string metrics;
};

// RAII pin of the tracer clock to virtual zero, so span timestamps can
// never leak wall-clock nondeterminism into any exported surface.
class TracerPin {
 public:
  TracerPin() { obs::Tracer::Global().SetClock([] { return 0.0; }); }
  ~TracerPin() { obs::Tracer::Global().SetClock(nullptr); }
};

std::unique_ptr<serve::Server> MakeStandingServer(const TrialScenario& s,
                                                  IndexCache* cache,
                                                  const fault::FaultPlan* plan,
                                                  ckpt::Store* store) {
  serve::ServeOptions so;
  so.threads = 0;  // Standing mode advances inline, clip-lockstep.
  so.share_detection_cache = true;
  so.fault_plan = plan;
  so.checkpoint_store = store;
  so.snapshot_every_clips = s.snapshot_every_clips;
  auto server = std::make_unique<serve::Server>(so);
  for (int i = 0; i < s.num_streams; ++i) {
    server->RegisterStream(SourceName(i), cache->Scenario(i, s.minutes),
                           s.model_seed + static_cast<uint64_t>(i));
  }
  return server;
}

int64_t AdvancesDone(const serve::Server& server, int num_streams) {
  int64_t done = 0;
  for (int i = 0; i < num_streams; ++i) {
    done += server.StreamPosition(SourceName(i));
  }
  return done;
}

Status AdmitWorkload(serve::Server* server, const TrialScenario& s) {
  for (const std::string& sql : ChaosWorkload(s)) {
    VAQ_RETURN_IF_ERROR(server->AddStandingQuery(sql).status());
  }
  return Status::OK();
}

std::string DescribeAll(const std::vector<serve::ServedQuery>& results) {
  std::string out;
  for (const serve::ServedQuery& q : results) {
    out += serve::DescribeServedQuery(q);
    out += "\n";
  }
  return out;
}

// Scheduled environment fault points inside the trial horizon, probed
// straight off the pure-function plan: the ground truth of what the run
// will see, independent of which layer consumes it. This is what makes
// dead fault paths visible in bench_chaos's histogram.
void CountScheduledFaults(const fault::FaultPlan& plan, int64_t clips,
                          int64_t frames_per_clip, TrialResult* r) {
  const int64_t frames = clips * frames_per_clip;
  for (int64_t f = 0; f < frames; ++f) {
    switch (plan.ProbeCall(fault::FaultDomain::kDetector, f, 0)) {
      case fault::FaultKind::kTimeout:
        ++r->coverage["env.timeout"];
        break;
      case fault::FaultKind::kCrash:
        ++r->coverage["env.model_outage"];
        break;
      case fault::FaultKind::kNanScore:
        ++r->coverage["env.nan_score"];
        break;
      case fault::FaultKind::kOutOfRangeScore:
        ++r->coverage["env.out_of_range_score"];
        break;
      case fault::FaultKind::kNone:
        break;
    }
  }
  for (int64_t c = 0; c < clips; ++c) {
    if (plan.DropClip(c)) ++r->coverage["env.drop_clip"];
  }
}

// --- Standing phase -----------------------------------------------------

StatusOr<RunOut> RunStandingReference(const TrialScenario& s,
                                      IndexCache* cache,
                                      const fault::FaultPlan* plan,
                                      int64_t total) {
  obs::MetricRegistry::Global().Reset();
  std::unique_ptr<serve::Server> server =
      MakeStandingServer(s, cache, plan, /*store=*/nullptr);
  VAQ_RETURN_IF_ERROR(AdmitWorkload(server.get(), s));
  for (int64_t i = 0; i < total; ++i) {
    VAQ_RETURN_IF_ERROR(server->AdvanceStream(SourceName(i % s.num_streams)));
  }
  RunOut out;
  out.described = DescribeAll(server->FinishStanding());
  out.metrics = NonCkptMetrics();
  return out;
}

Status RunStandingChaos(const TrialScenario& s, const Schedule& schedule,
                        const TrialOptions& options, IndexCache* cache,
                        const fault::FaultPlan* plan, int64_t total,
                        TrialResult* r, RunOut* out) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.Reset();
  ckpt::MemStore store;
  std::unique_ptr<serve::Server> server =
      MakeStandingServer(s, cache, plan, &store);
  VAQ_RETURN_IF_ERROR(AdmitWorkload(server.get(), s));

  int64_t done = 0;
  bool aborted = false;
  std::string corrupted;  // Corrupted snapshot entry name, if any.

  const auto violation = [&](const std::string& msg) {
    r->violations.push_back("standing: " + msg);
    aborted = true;
  };
  const auto src = [&](int64_t i) { return SourceName(i % s.num_streams); };
  const auto drive_to = [&](int64_t target) {
    for (; !aborted && done < target; ++done) {
      const Status st = server->AdvanceStream(src(done));
      if (!st.ok()) {
        violation("advance " + std::to_string(done) +
                  " failed: " + st.ToString());
      }
    }
  };
  const auto newest_snapshot = [&]() -> StatusOr<std::string> {
    VAQ_ASSIGN_OR_RETURN(std::vector<std::string> names, store.List());
    std::string newest;  // List() is sorted; snap names are zero-padded.
    for (const std::string& name : names) {
      if (name.rfind("snap-", 0) == 0) newest = name;
    }
    return newest;
  };

  const auto crash_recover = [&](const ChaosEvent& e) -> Status {
    // A torn advance needs a clip left to tear; at end of stream the
    // event degrades to a plain crash.
    const bool torn = e.kind == EventKind::kTornAdvance && done < total;
    if (torn) {
      const Status st = server->WalTornAdvance(src(done));
      if (!st.ok()) {
        violation("torn advance failed: " + st.ToString());
        return Status::OK();
      }
    }
    // The WAL record of a torn advance is applied once, on replay.
    const int64_t expect_done = done + (torn ? 1 : 0);
    VAQ_ASSIGN_OR_RETURN(const std::string newest, newest_snapshot());
    const bool expect_reject = !corrupted.empty() && corrupted == newest;

    server.reset();  // Crash: the process is gone, registry and all.
    registry.Reset();
    server = MakeStandingServer(s, cache, plan, &store);
    const StatusOr<ckpt::RecoveryReport> report = server->Recover();
    if (!report.ok()) {
      violation("recovery failed: " + report.status().ToString());
      return Status::OK();
    }
    ++r->coverage[std::string("event.") + EventKindName(e.kind)];

    // Recovery-counter consistency. Counters are process-local (the
    // registry reset models the restart) and vaq_ckpt_* is excluded
    // from snapshot restore, so this recovery's increments are visible
    // exactly once.
    const int64_t recoveries =
        registry.GetCounter("vaq_ckpt_recoveries_total", {})->value();
    if (recoveries != 1) {
      violation("vaq_ckpt_recoveries_total=" + std::to_string(recoveries) +
                " after recovery, expected 1");
    }
    const int64_t corrupt_reads =
        registry.GetCounter("vaq_ckpt_corrupt_total", {})->value();
    if (corrupt_reads != report->snapshots_rejected) {
      violation("vaq_ckpt_corrupt_total=" + std::to_string(corrupt_reads) +
                " disagrees with snapshots_rejected=" +
                std::to_string(report->snapshots_rejected));
    }
    if (expect_reject && report->snapshots_rejected < 1) {
      violation("corrupted newest snapshot '" + corrupted +
                "' was restored without rejection");
    }
    if (!expect_reject && report->snapshots_rejected != 0) {
      violation("recovery rejected " +
                std::to_string(report->snapshots_rejected) +
                " snapshots with none corrupted");
    }
    const int64_t restored = AdvancesDone(*server, s.num_streams);
    if (restored != expect_done) {
      violation("recovery restored " + std::to_string(restored) +
                " advances, expected " + std::to_string(expect_done));
    }
    done = restored;
    if (options.canary && !aborted && done < total) {
      // The injected bug: one extra, unaccounted advance — the
      // double-apply a log-after-apply WAL would produce.
      const Status injected = server->AdvanceStream(src(done));
      (void)injected;
    }
    return Status::OK();
  };

  for (const ChaosEvent& e : schedule) {
    if (aborted) break;
    switch (e.kind) {
      case EventKind::kCrashRestart:
      case EventKind::kTornAdvance:
        drive_to(std::min(e.at_advance, total));
        if (!aborted) VAQ_RETURN_IF_ERROR(crash_recover(e));
        break;
      case EventKind::kForceCheckpoint: {
        drive_to(std::min(e.at_advance, total));
        if (aborted) break;
        const Status st = server->Checkpoint();
        if (!st.ok()) {
          violation("forced checkpoint failed: " + st.ToString());
        } else {
          ++r->coverage["event.force_checkpoint"];
        }
        break;
      }
      case EventKind::kCorruptSnapshot: {
        drive_to(std::min(e.at_advance, total));
        if (aborted) break;
        VAQ_ASSIGN_OR_RETURN(std::vector<std::string> names, store.List());
        std::vector<std::string> snaps;
        for (const std::string& name : names) {
          if (name.rfind("snap-", 0) == 0) snaps.push_back(name);
        }
        // Only corrupt when a fallback exists (recovery must always
        // succeed — that invariant is the oracle, not corruption
        // itself) and the newest is not already corrupt (a second flip
        // could cancel the first).
        if (snaps.size() < 2 || snaps.back() == corrupted) {
          ++r->coverage["event.skipped.corrupt_snapshot"];
          break;
        }
        VAQ_ASSIGN_OR_RETURN(const std::string bytes, store.Get(snaps.back()));
        const int64_t index =
            12 + (e.at_advance * 37) %
                     std::max<int64_t>(1, static_cast<int64_t>(bytes.size()) -
                                              12);
        const uint8_t mask =
            static_cast<uint8_t>(1u << (e.at_advance % 7)) | 1u;
        VAQ_RETURN_IF_ERROR(
            ckpt::CorruptEntryByte(&store, snaps.back(), index, mask));
        corrupted = snaps.back();
        ++r->coverage["event.corrupt_snapshot"];
        break;
      }
      case EventKind::kNodeKill:
      case EventKind::kNetPartition:
        // Cluster events in a standing schedule (hand-edited replay):
        // nothing to apply them to.
        ++r->coverage[std::string("event.skipped.") + EventKindName(e.kind)];
        break;
    }
  }
  drive_to(total);
  if (!aborted) {
    const int64_t final_done = AdvancesDone(*server, s.num_streams);
    if (final_done != total) {
      violation("progress: session ended at " + std::to_string(final_done) +
                " advances, expected " + std::to_string(total));
    }
  }
  if (!aborted) {
    out->described = DescribeAll(server->FinishStanding());
    out->metrics = NonCkptMetrics();
  }
  return Status::OK();
}

Status RunStanding(const TrialScenario& s, const Schedule& schedule,
                   const TrialOptions& options, IndexCache* cache,
                   TrialResult* r) {
  const int64_t clips_per_stream = static_cast<int64_t>(
      cache->Scenario(0, s.minutes).layout().NumClips());
  const int64_t total =
      std::min(s.advances, clips_per_stream * s.num_streams);

  StatusOr<fault::FaultPlan> plan_or =
      fault::FaultPlan::Create(s.env, s.env_seed);
  VAQ_RETURN_IF_ERROR(plan_or.status());
  const fault::FaultPlan* plan = s.env.any() ? &*plan_or : nullptr;
  if (plan != nullptr) {
    CountScheduledFaults(
        *plan, total,
        cache->Scenario(0, s.minutes).layout().frames_per_clip(), r);
  }

  VAQ_ASSIGN_OR_RETURN(const RunOut ref,
                       RunStandingReference(s, cache, plan, total));
  RunOut chaos;
  VAQ_RETURN_IF_ERROR(
      RunStandingChaos(s, schedule, options, cache, plan, total, r, &chaos));
  if (!r->violations.empty()) return Status::OK();
  if (chaos.described != ref.described) {
    r->violations.push_back(
        "standing: described results diverged from the fault-free "
        "reference");
  }
  if (chaos.metrics != ref.metrics) {
    r->violations.push_back(
        "standing: logical vaq_* metrics diverged from the fault-free "
        "reference");
  }
  return Status::OK();
}

// --- Cluster phase ------------------------------------------------------

Status RunCluster(const TrialScenario& s, const Schedule& schedule,
                  const TrialOptions& options, IndexCache* cache,
                  TrialResult* r) {
  offline::Repository repo;
  for (int i = 0; i < s.num_videos; ++i) {
    VAQ_ASSIGN_OR_RETURN(
        const storage::VideoIndex* index,
        cache->Index(i, s.minutes, s.model_seed + static_cast<uint64_t>(i)));
    repo.Add("v" + std::to_string(i), *index);
  }
  const offline::PaperScoring scoring;
  offline::RvaqOptions rvaq;
  rvaq.k = s.k;

  // Cascade-enabled trials pre-filter BOTH sides through one shared
  // plan: the single-node reference and every shard resolve identical
  // surviving-clip sets (the planner is a pure function of the proxy
  // index), so the merged-vs-reference and self-determinism oracles
  // cover the cascade path, failover re-runs included.
  cascade::ProxySet proxies;
  std::unique_ptr<cascade::PlanFilters> filters;
  if (s.recall < 1.0) {
    for (int i = 0; i < s.num_videos; ++i) {
      const std::string name = "v" + std::to_string(i);
      VAQ_ASSIGN_OR_RETURN(
          cascade::ProxyVideoIndex proxy_index,
          cascade::LoadOrBuildProxyIndex(
              /*store=*/nullptr, name, cache->Scenario(i, s.minutes),
              detect::ModelProfile::ProxyCnn(),
              s.model_seed + static_cast<uint64_t>(i)));
      proxies.emplace(name, std::move(proxy_index));
    }
    const cascade::Planner planner(&proxies);
    VAQ_ASSIGN_OR_RETURN(const cascade::CascadePlan plan,
                         planner.Plan("running", {"dog"}, s.recall));
    if (plan.use_cascade) {
      filters = std::make_unique<cascade::PlanFilters>(&proxies, plan);
      rvaq.prefilter = filters.get();
      ++r->coverage["cascade.cluster_plans"];
    } else {
      ++r->coverage["cascade.cluster_exact_fallbacks"];
    }
  }

  obs::MetricRegistry::Global().Reset();
  VAQ_ASSIGN_OR_RETURN(const offline::RepositoryTopKResult ref,
                       repo.TopK("running", {"dog"}, scoring, rvaq));
  const std::string ref_top = DescribeTop(ref.top);

  fault::FaultSpec spec = s.env;
  bool scheduled_kills = false;
  for (const ChaosEvent& e : schedule) {
    fault::ScheduledWindow w;
    if (e.kind == EventKind::kNodeKill) {
      w.domain = fault::FaultDomain::kNode;
      w.key = e.host;
      scheduled_kills = true;
      ++r->coverage["event.node_kill"];
    } else if (e.kind == EventKind::kNetPartition) {
      w.domain = fault::FaultDomain::kNetwork;
      ++r->coverage["event.net_partition"];
    } else {
      ++r->coverage[std::string("event.skipped.") + EventKindName(e.kind)];
      continue;
    }
    w.from_ms = e.from_ms;
    w.to_ms = e.to_ms;
    spec.windows.push_back(w);
  }
  VAQ_ASSIGN_OR_RETURN(const fault::FaultPlan plan,
                       fault::FaultPlan::Create(spec, s.env_seed));

  cluster::ClusterOptions co;
  co.num_shards = s.num_shards;
  co.num_replicas = s.num_replicas;
  co.scheme = s.scheme;
  co.batch_size = s.batch_size;
  co.fault_plan = &plan;
  co.max_steps = options.cluster_max_steps;
  cluster::Coordinator coordinator(&repo, co);
  if (s.rebalance > 0) {
    // Elastic churn before the chaos queries: split the first shard that
    // holds at least two videos; rebalance == 2 merges the pair back.
    // Either way every oracle below must still hold — result bytes are
    // layout-invariant, faults or not.
    for (int shard = 0; shard < coordinator.num_shards(); ++shard) {
      if (coordinator.SplitShard(shard).ok()) {
        ++r->coverage["cluster.splits"];
        if (s.rebalance == 2 && coordinator.MergeShards(shard).ok()) {
          ++r->coverage["cluster.merges"];
        }
        break;
      }
    }
  }

  // Two identical chaos runs: the event loop itself must be a pure
  // function of the plan (self-determinism), independently of whether
  // the outcome matches the reference. Each run carries its own query
  // trace; the rendered profiles must match byte for byte too — the
  // per-shard attribution is part of the deterministic surface.
  obs::MetricRegistry::Global().Reset();
  obs::QueryTrace trace1("chaos");
  const StatusOr<cluster::ClusterTopKResult> run1 = coordinator.TopK(
      "running", {"dog"}, scoring, rvaq, obs::QueryContext{&trace1, 0});
  obs::MetricRegistry::Global().Reset();
  obs::QueryTrace trace2("chaos");
  const StatusOr<cluster::ClusterTopKResult> run2 = coordinator.TopK(
      "running", {"dog"}, scoring, rvaq, obs::QueryContext{&trace2, 0});

  const auto violation = [&](const std::string& msg) {
    r->violations.push_back("cluster: " + msg);
  };
  if (run1.ok() != run2.ok() ||
      (!run1.ok() && run1.status().ToString() != run2.status().ToString())) {
    violation("two identical runs disagree on outcome: '" +
              run1.status().ToString() + "' vs '" + run2.status().ToString() +
              "'");
    return Status::OK();
  }
  if (run1.ok() &&
      DescribeTop(run1->merged.top) != DescribeTop(run2->merged.top)) {
    violation("two identical runs returned different top lists");
    return Status::OK();
  }
  if (trace1.RenderProfile() != trace2.RenderProfile()) {
    violation("two identical runs produced different query profiles");
    return Status::OK();
  }

  const bool availability_faults =
      s.env.node_outage_rate > 0.0 || scheduled_kills;
  if (!run1.ok()) {
    if (run1.status().code() == StatusCode::kDeadlineExceeded) {
      violation("watchdog: " + std::string(run1.status().message()));
    } else if (run1.status().code() != StatusCode::kUnavailable) {
      violation("undocumented failure status: " + run1.status().ToString());
    } else if (!availability_faults) {
      violation("kUnavailable without any availability fault: " +
                std::string(run1.status().message()));
    } else {
      ++r->coverage["cluster.unavailable"];
    }
    return Status::OK();
  }

  if (DescribeTop(run1->merged.top) != ref_top) {
    violation("merged top list diverged from the single-node reference");
  }
  if (run1->merged.accesses.ToString() != ref.accesses.ToString()) {
    violation("table-access accounting diverged from the reference");
  }
  if (run1->merged.videos_queried != ref.videos_queried ||
      run1->merged.videos_skipped != ref.videos_skipped ||
      run1->merged.candidate_sequences != ref.candidate_sequences) {
    violation("scan accounting diverged from the reference");
  }
  if (!std::isfinite(run1->answer_ms) || run1->answer_ms < 0.0) {
    violation("sim clock did not progress monotonically: answer_ms=" +
              Fmt(run1->answer_ms));
  }
  r->coverage["net.drops"] += run1->net.drops;
  r->coverage["net.partition_drops"] += run1->net.partition_drops;
  r->coverage["net.duplicates"] += run1->net.duplicates_suppressed;
  r->coverage["cluster.failovers"] += run1->failovers;
  return Status::OK();
}

// --- Serve phase --------------------------------------------------------

struct ServeOut {
  std::string described;
  std::string metrics;
  std::string stats;
  std::string profiles;  // Concatenated per-query RenderProfile, id order.
};

StatusOr<ServeOut> RunServeOnce(const TrialScenario& s, IndexCache* cache,
                                const fault::FaultPlan* plan,
                                const storage::VideoIndex* repository,
                                int threads, TrialResult* r) {
  obs::MetricRegistry::Global().Reset();
  serve::ServeOptions so;
  so.threads = threads;
  so.queue_capacity = s.num_queries;  // Sized to fit: no overflow path.
  so.share_detection_cache = true;
  so.fault_plan = plan;
  so.trace_queries = true;  // Profiles join the determinism surface.
  // Tenant quotas sized to fit, like the queue: sheds are scheduling-
  // dependent at threads > 0, and the oracle here is that the *tagged*
  // path (vaq_tenant_* accounting included) is thread-count-invariant.
  for (int t = 0; t < s.tenants; ++t) {
    so.tenant_quotas["t" + std::to_string(t)] = s.num_queries;
  }
  serve::Server server(so);
  for (int i = 0; i < s.num_streams; ++i) {
    server.RegisterStream(SourceName(i), cache->Scenario(i, s.minutes),
                          s.model_seed + static_cast<uint64_t>(i));
  }
  if (repository != nullptr) {
    server.RegisterRepository(kChaosRepositoryName, *repository);
  }
  int submitted = 0;
  for (const std::string& sql : ChaosWorkload(s)) {
    const StatusOr<int64_t> id =
        s.tenants > 0
            ? server.Submit(sql, "t" + std::to_string(submitted % s.tenants))
            : server.Submit(sql);
    ++submitted;
    if (!id.ok()) {
      r->violations.push_back("serve: submit rejected (capacity fits the "
                              "workload): " +
                              id.status().ToString());
    }
  }
  ServeOut out;
  const std::vector<serve::ServedQuery> drained = server.Drain();
  for (const serve::ServedQuery& q : drained) {
    if (q.trace != nullptr) out.profiles += q.trace->RenderProfile();
  }
  out.described = DescribeAll(drained);
  out.metrics = obs::ExportPrometheus(
      obs::FilterSnapshot(obs::MetricRegistry::Global().TakeSnapshot(),
                          serve::LogicalMetricPrefixes()));
  out.stats = server.stats().ToString();
  return out;
}

Status RunServe(const TrialScenario& s, const TrialOptions& options,
                IndexCache* cache, TrialResult* r) {
  (void)options;
  const storage::VideoIndex* repository = nullptr;
  if (s.with_repository) {
    VAQ_ASSIGN_OR_RETURN(repository, cache->Index(0, s.minutes, s.model_seed));
  }
  StatusOr<fault::FaultPlan> plan_or =
      fault::FaultPlan::Create(s.env, s.env_seed);
  VAQ_RETURN_IF_ERROR(plan_or.status());
  const fault::FaultPlan* plan = s.env.any() ? &*plan_or : nullptr;
  const int64_t clips = static_cast<int64_t>(
      cache->Scenario(0, s.minutes).layout().NumClips());
  if (plan != nullptr) {
    CountScheduledFaults(*plan, clips * s.num_streams,
                         cache->Scenario(0, s.minutes).layout().frames_per_clip(),
                         r);
  }

  if (s.tenants > 0) r->coverage["serve.tenants"] += s.tenants;
  VAQ_ASSIGN_OR_RETURN(const ServeOut ref,
                       RunServeOnce(s, cache, plan, repository, 0, r));
  VAQ_ASSIGN_OR_RETURN(const ServeOut chaos,
                       RunServeOnce(s, cache, plan, repository, s.threads, r));
  if (!r->violations.empty()) return Status::OK();
  if (chaos.described != ref.described) {
    r->violations.push_back("serve: results under " +
                            std::to_string(s.threads) +
                            " threads diverged from the inline reference");
  }
  if (chaos.metrics != ref.metrics) {
    r->violations.push_back(
        "serve: logical vaq_* metrics are thread-count-dependent");
  }
  if (chaos.stats != ref.stats) {
    r->violations.push_back(
        "serve: lifetime stats are thread-count-dependent");
  }
  if (chaos.profiles != ref.profiles) {
    r->violations.push_back(
        "serve: per-query profiles are thread-count-dependent");
  }
  return Status::OK();
}

}  // namespace

const synth::Scenario& IndexCache::Scenario(int index, int minutes) {
  const std::pair<int, int> key(index, minutes);
  auto it = scenarios_.find(key);
  if (it == scenarios_.end()) {
    it = scenarios_.emplace(key, ChaosScenario(index, minutes)).first;
  }
  return it->second;
}

StatusOr<const storage::VideoIndex*> IndexCache::Index(int index, int minutes,
                                                       uint64_t model_seed) {
  const std::tuple<int, int, uint64_t> key(index, minutes, model_seed);
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    const synth::Scenario& scenario = Scenario(index, minutes);
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), model_seed);
    const offline::PaperScoring scoring;
    offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                               offline::IngestOptions{});
    VAQ_ASSIGN_OR_RETURN(storage::VideoIndex built,
                         ingestor.Ingest(scenario.truth(), models));
    it = indexes_.emplace(key, std::move(built)).first;
  }
  return &it->second;
}

StatusOr<TrialResult> RunTrial(const TrialScenario& scenario,
                               const Schedule& schedule,
                               const TrialOptions& options,
                               IndexCache* cache) {
  TrialResult result;
  result.trial = scenario.trial;
  result.phase = scenario.phase;
  const TracerPin pin;
  switch (scenario.phase) {
    case Phase::kStanding:
      VAQ_RETURN_IF_ERROR(
          RunStanding(scenario, schedule, options, cache, &result));
      break;
    case Phase::kCluster:
      VAQ_RETURN_IF_ERROR(
          RunCluster(scenario, schedule, options, cache, &result));
      break;
    case Phase::kServe:
      VAQ_RETURN_IF_ERROR(RunServe(scenario, options, cache, &result));
      break;
  }
  return result;
}

}  // namespace chaos
}  // namespace vaq
