#include "chaos/scenario.h"

#include <string>

#include "common/rng.h"

namespace vaq {
namespace chaos {
namespace {

// Sub-seed streams of one trial. The scenario and the schedule draw
// from *separate* Rngs so a replay can regenerate the scenario from
// (seed, trial) while substituting a shrunk schedule.
constexpr uint64_t kScenarioSalt = 0x5c3a9d4be1f02687ULL;

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kStanding:
      return "standing";
    case Phase::kCluster:
      return "cluster";
    case Phase::kServe:
      return "serve";
  }
  return "unknown";
}

synth::ScenarioSpec ChaosScenarioSpec(int index, int minutes) {
  synth::ScenarioSpec spec;
  spec.name = "s" + std::to_string(index);
  spec.minutes = minutes;
  spec.fps = 30;
  spec.seed = 70707 + 977 * static_cast<uint64_t>(index) +
              13 * static_cast<uint64_t>(minutes);
  synth::ActionTrackSpec action;
  action.name = "running";
  action.duty = 0.3;
  action.mean_len_frames = 600;
  spec.actions.push_back(action);
  synth::ObjectTrackSpec dog;
  dog.name = "dog";
  dog.background_duty = 0.06;
  dog.mean_len_frames = 500;
  dog.coupled_action = "running";
  dog.cover_action_prob = 0.9;
  spec.objects.push_back(dog);
  if (index > 0) {
    synth::ObjectTrackSpec car;
    car.name = "car";
    car.background_duty = 0.08;
    car.mean_len_frames = 400;
    spec.objects.push_back(car);
  }
  return spec;
}

synth::Scenario ChaosScenario(int index, int minutes) {
  return synth::Scenario::FromSpec(ChaosScenarioSpec(index, minutes),
                                   "running", {"dog"});
}

TrialScenario MakeTrialScenario(uint64_t seed, int64_t trial) {
  Rng rng(MixSeed(MixSeed(seed, kScenarioSalt),
                  static_cast<uint64_t>(trial)));
  TrialScenario s;
  s.trial = trial;
  // Phase mix: the durable standing path has the richest event space,
  // so it gets the largest share.
  const int64_t roll = rng.UniformInt(int64_t{0}, int64_t{99});
  s.phase = roll < 45   ? Phase::kStanding
            : roll < 80 ? Phase::kCluster
                        : Phase::kServe;
  s.minutes = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{2}));
  s.model_seed = 1 + rng.UniformInt(uint64_t{3});
  s.env_seed = MixSeed(seed, static_cast<uint64_t>(trial) * 2 + 1);

  // Environment fault rates. Half the trials run a clean environment so
  // the adversarial schedule is tested in isolation too.
  const bool faulty_env = rng.Bernoulli(0.5);
  if (faulty_env) {
    s.env.timeout_rate = rng.Bernoulli(0.6) ? rng.UniformDouble(0.0, 0.08) : 0;
    s.env.crash_rate = rng.Bernoulli(0.4) ? rng.UniformDouble(0.0, 0.1) : 0;
    s.env.crash_len_units =
        rng.UniformInt(int64_t{64}, int64_t{600});
    s.env.nan_score_rate =
        rng.Bernoulli(0.3) ? rng.UniformDouble(0.0, 0.02) : 0;
    s.env.out_of_range_score_rate =
        rng.Bernoulli(0.3) ? rng.UniformDouble(0.0, 0.02) : 0;
    s.env.drop_clip_rate =
        rng.Bernoulli(0.4) ? rng.UniformDouble(0.0, 0.05) : 0;
  }

  switch (s.phase) {
    case Phase::kStanding: {
      s.num_streams = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{2}));
      s.num_queries = static_cast<int>(rng.UniformInt(int64_t{2}, int64_t{5}));
      s.snapshot_every_clips = rng.UniformInt(int64_t{2}, int64_t{8});
      const int64_t clips_per_stream =
          static_cast<int64_t>(s.minutes) * 18;  // 30fps, 100-frame clips.
      const int64_t capacity =
          clips_per_stream * static_cast<int64_t>(s.num_streams);
      s.advances = rng.UniformInt(int64_t{6}, capacity);
      break;
    }
    case Phase::kCluster: {
      s.num_videos = static_cast<int>(rng.UniformInt(int64_t{2}, int64_t{4}));
      s.num_shards =
          static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{4}));
      s.num_replicas =
          static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{2}));
      s.scheme = rng.Bernoulli(0.5) ? cluster::PartitionScheme::kHash
                                    : cluster::PartitionScheme::kRange;
      s.batch_size = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{4}));
      s.k = rng.UniformInt(int64_t{2}, int64_t{5});
      if (faulty_env) {
        s.env.net_drop_rate =
            rng.Bernoulli(0.6) ? rng.UniformDouble(0.0, 0.2) : 0;
        s.env.net_dup_rate =
            rng.Bernoulli(0.4) ? rng.UniformDouble(0.0, 0.1) : 0;
        s.env.node_outage_rate =
            rng.Bernoulli(0.4) ? rng.UniformDouble(0.0, 0.2) : 0;
        s.env.node_outage_len_ms = rng.UniformInt(int64_t{20}, int64_t{80});
      }
      break;
    }
    case Phase::kServe: {
      s.num_streams = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{2}));
      s.num_queries =
          static_cast<int>(rng.UniformInt(int64_t{4}, int64_t{10}));
      s.threads = static_cast<int>(rng.UniformInt(int64_t{2}, int64_t{4}));
      s.with_repository = rng.Bernoulli(0.5);
      break;
    }
  }
  // Cascade mix, drawn last so the established per-phase draw sequences
  // stay put: ~40% of trials carry an approximate recall target and run
  // the proxy cascade under the same oracles as the exact path.
  if (rng.Bernoulli(0.4)) {
    s.recall = rng.Bernoulli(0.5) ? 0.95 : 0.9;
  }
  // Front-door draws, appended after the cascade draw for the same
  // reason: half the serve trials run tenant-tagged, half the cluster
  // trials churn the shard layout before querying.
  if (s.phase == Phase::kServe && rng.Bernoulli(0.5)) {
    s.tenants = static_cast<int>(rng.UniformInt(int64_t{2}, int64_t{3}));
  }
  if (s.phase == Phase::kCluster && rng.Bernoulli(0.5)) {
    s.rebalance = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{2}));
  }
  return s;
}

std::vector<std::string> ChaosWorkload(const TrialScenario& s) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(s.num_queries));
  const int streams = s.num_streams > 0 ? s.num_streams : 1;
  // The trial's recall target only admits the two fixed values drawn in
  // MakeTrialScenario, so the clause renders without float formatting.
  const std::string recall_clause =
      s.recall >= 1.0 ? ""
      : s.recall == 0.95 ? " WITH RECALL 0.95"
                         : " WITH RECALL 0.9";
  for (int q = 0; q < s.num_queries; ++q) {
    // Every ranked statement and every odd online statement carries the
    // clause; even online statements stay exact so each trial compares
    // both paths under one schedule.
    const std::string online_clause = (q % 2 == 1) ? recall_clause : "";
    if (s.with_repository && q % 4 == 3) {
      out.push_back(
          "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
          "FROM (PROCESS " +
          std::string(kChaosRepositoryName) +
          " PRODUCE clipID, obj USING ObjectTracker, "
          "act USING ActionRecognizer) "
          "WHERE act='running' AND obj.include('dog') "
          "ORDER BY RANK(act, obj) LIMIT " + std::to_string(2 + q % 3) +
          recall_clause);
      continue;
    }
    const int stream = q % streams;
    const std::string from =
        "FROM (PROCESS s" + std::to_string(stream) +
        " PRODUCE clipID, obj USING ObjectDetector, "
        "act USING ActionRecognizer) ";
    switch ((q / streams) % 3) {
      case 0:
        out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                      "WHERE act='running' AND obj.include('dog')" +
                      online_clause);
        break;
      case 1:
        out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                      "WHERE obj.include('dog')" + online_clause);
        break;
      default:
        if (stream > 0) {
          // Only the variant streams (index > 0) carry "car". With a
          // recall clause this is the CNF exact-fallback path.
          out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                        "WHERE (obj='dog' OR obj='car') AND act='running'" +
                        online_clause);
        } else {
          out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                        "WHERE act='running'" + online_clause);
        }
        break;
    }
  }
  return out;
}

}  // namespace chaos
}  // namespace vaq
