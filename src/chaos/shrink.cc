#include "chaos/shrink.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace vaq {
namespace chaos {
namespace {

// The events of `from` outside chunk `chunk` of `n` equal slices.
Schedule Complement(const Schedule& from, size_t n, size_t chunk) {
  Schedule out;
  const size_t size = from.size();
  const size_t lo = chunk * size / n;
  const size_t hi = (chunk + 1) * size / n;
  for (size_t i = 0; i < size; ++i) {
    if (i < lo || i >= hi) out.push_back(from[i]);
  }
  return out;
}

Schedule Chunk(const Schedule& from, size_t n, size_t chunk) {
  Schedule out;
  const size_t size = from.size();
  const size_t lo = chunk * size / n;
  const size_t hi = (chunk + 1) * size / n;
  for (size_t i = lo; i < hi; ++i) out.push_back(from[i]);
  return out;
}

}  // namespace

StatusOr<ShrinkResult> DdminSchedule(const Schedule& failing,
                                     const ScheduleFails& fails) {
  ShrinkResult result;
  result.minimal = failing;
  if (failing.size() <= 1) return result;

  size_t n = 2;
  while (result.minimal.size() >= 2) {
    bool reduced = false;
    // Subsets first: a single failing chunk is the fastest win.
    for (size_t c = 0; c < n && !reduced; ++c) {
      Schedule candidate = Chunk(result.minimal, n, c);
      if (candidate.empty() || candidate.size() == result.minimal.size()) {
        continue;
      }
      ++result.runs;
      VAQ_ASSIGN_OR_RETURN(const bool still_fails, fails(candidate));
      if (still_fails) {
        result.minimal = std::move(candidate);
        n = 2;
        reduced = true;
      }
    }
    // Then complements: drop one chunk at a time.
    for (size_t c = 0; c < n && !reduced; ++c) {
      Schedule candidate = Complement(result.minimal, n, c);
      if (candidate.empty() || candidate.size() == result.minimal.size()) {
        continue;
      }
      ++result.runs;
      VAQ_ASSIGN_OR_RETURN(const bool still_fails, fails(candidate));
      if (still_fails) {
        result.minimal = std::move(candidate);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (n >= result.minimal.size()) break;  // 1-minimal.
      n = std::min(result.minimal.size(), n * 2);
    }
  }
  return result;
}

}  // namespace chaos
}  // namespace vaq
