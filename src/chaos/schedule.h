// Chaos fault schedules and the replay format.
//
// A schedule is an explicit list of adversarial events applied to the
// chaos run only — the difference between the reference world and the
// tortured one. Standing events are anchored to the advance counter
// ("crash after N clip advances"); cluster events are windows on the
// fault::SimClock virtual-millisecond axis ("host 2 down over
// [30, 80)"). Every event is designed to be *result-transparent*: the
// stack under test claims that crashes recover byte-identically, that
// corruption falls back to the predecessor snapshot, that kills fail
// over and partitions only delay. The oracles (chaos/trial.h) check
// exactly that claim, so each event is independently removable — the
// property delta-debugging shrinking (chaos/shrink.h) relies on.
//
// A ReplaySpec is the whole reproducer: (sweep seed, trial index)
// regenerate the scenario, `events` overrides the schedule. Serialized
// as a small hand-rolled JSON document (the repo carries no JSON
// dependency) stable enough to paste into a bug report:
//
//   {"chaos_replay": 1, "seed": 1, "trial": 17, "canary": false,
//    "events": [{"kind": "crash_restart", "at_advance": 9}]}
#ifndef VAQ_CHAOS_SCHEDULE_H_
#define VAQ_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "common/status.h"

namespace vaq {
namespace chaos {

enum class EventKind {
  // Standing-phase events (at_advance-anchored).
  kCrashRestart = 0,  // Crash after `at_advance` advances; recover.
  kTornAdvance,       // Crash between WAL append and apply; recover.
  kCorruptSnapshot,   // Flip a byte of the newest snapshot (needs >= 2
                      // snapshots retained, else skipped: the fallback
                      // must exist for recovery to be guaranteed).
  kForceCheckpoint,   // Checkpoint() outside the automatic cadence.
  // Cluster-phase events ([from_ms, to_ms) windows).
  kNodeKill,          // `host` down for the window, back up after.
  kNetPartition,      // The whole fabric partitioned for the window.
};

const char* EventKindName(EventKind kind);
StatusOr<EventKind> EventKindFromName(const std::string& name);

struct ChaosEvent {
  EventKind kind = EventKind::kCrashRestart;
  int64_t at_advance = 0;  // Standing events: applied after this many
                           // session-wide advances.
  int64_t host = -1;       // kNodeKill.
  double from_ms = 0.0;    // Window events.
  double to_ms = 0.0;

  bool operator==(const ChaosEvent& other) const {
    return kind == other.kind && at_advance == other.at_advance &&
           host == other.host && from_ms == other.from_ms &&
           to_ms == other.to_ms;
  }
};

using Schedule = std::vector<ChaosEvent>;

// Draws the schedule for one trial. Seeded independently of the
// scenario draw (see MakeTrialScenario), so replays can substitute a
// shrunk schedule without perturbing the scenario.
Schedule GenerateSchedule(const TrialScenario& scenario, uint64_t seed);

// Everything needed to re-run one trial byte-identically.
struct ReplaySpec {
  uint64_t seed = 1;
  int64_t trial = 0;
  bool canary = false;  // The test-only injected bug (chaos/trial.h).
  Schedule events;
};

std::string ReplayToJson(const ReplaySpec& spec);
StatusOr<ReplaySpec> ReplayFromJson(const std::string& json);

}  // namespace chaos
}  // namespace vaq

#endif  // VAQ_CHAOS_SCHEDULE_H_
