#include "chaos/engine.h"

#include <utility>

#include "chaos/shrink.h"

namespace vaq {
namespace chaos {
namespace {

void MergeCoverage(const TrialResult& trial, ChaosReport* report) {
  for (const auto& [key, count] : trial.coverage) {
    report->coverage[key] += count;
  }
}

TrialOptions MakeTrialOptions(const ChaosOptions& options) {
  TrialOptions t;
  t.canary = options.canary;
  t.cluster_max_steps = options.cluster_max_steps;
  return t;
}

}  // namespace

StatusOr<ChaosReport> RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  IndexCache cache;
  const TrialOptions trial_options = MakeTrialOptions(options);

  for (int64_t trial = 0; trial < options.trials; ++trial) {
    const TrialScenario scenario = MakeTrialScenario(options.seed, trial);
    const Schedule schedule = GenerateSchedule(scenario, options.seed);
    VAQ_ASSIGN_OR_RETURN(const TrialResult result,
                         RunTrial(scenario, schedule, trial_options, &cache));
    ++report.trials_run;
    ++report.trials_per_phase[PhaseName(scenario.phase)];
    MergeCoverage(result, &report);
    if (options.progress != nullptr) options.progress(result);
    if (!result.failed()) continue;

    // First failure: freeze it, shrink it, package the reproducer.
    report.failure = result.violations;
    report.failed_trial = trial;
    report.failed_phase = scenario.phase;
    report.original_events = static_cast<int64_t>(schedule.size());

    Schedule minimal = schedule;
    if (options.shrink && !schedule.empty()) {
      const ScheduleFails fails =
          [&](const Schedule& candidate) -> StatusOr<bool> {
        VAQ_ASSIGN_OR_RETURN(
            const TrialResult rerun,
            RunTrial(scenario, candidate, trial_options, &cache));
        return rerun.failed();
      };
      VAQ_ASSIGN_OR_RETURN(const ShrinkResult shrunk,
                           DdminSchedule(schedule, fails));
      minimal = shrunk.minimal;
      report.shrink_runs = shrunk.runs;
      if (minimal.size() != schedule.size()) {
        // The reported violations must describe the schedule we ship:
        // a subset of events can fail a *different* oracle than the
        // full draw did.
        VAQ_ASSIGN_OR_RETURN(
            const TrialResult minimal_run,
            RunTrial(scenario, minimal, trial_options, &cache));
        if (minimal_run.failed()) report.failure = minimal_run.violations;
      }
    }

    report.reproducer.seed = options.seed;
    report.reproducer.trial = trial;
    report.reproducer.canary = options.canary;
    report.reproducer.events = minimal;
    report.replay_json = ReplayToJson(report.reproducer);

    // Round-trip the reproducer through its own JSON and re-run it: the
    // emitted document — not the in-memory schedule — must reproduce the
    // exact violations, or the artifact we hand the user is worthless.
    VAQ_ASSIGN_OR_RETURN(const ReplaySpec parsed,
                         ReplayFromJson(report.replay_json));
    VAQ_ASSIGN_OR_RETURN(
        const TrialResult rerun,
        RunTrial(MakeTrialScenario(parsed.seed, parsed.trial), parsed.events,
                 trial_options, &cache));
    report.replay_confirmed = rerun.violations == report.failure;
    break;
  }
  return report;
}

StatusOr<ChaosReport> RunReplay(const ReplaySpec& spec,
                                const ChaosOptions& options) {
  ChaosReport report;
  IndexCache cache;
  TrialOptions trial_options = MakeTrialOptions(options);
  trial_options.canary = spec.canary;

  const TrialScenario scenario = MakeTrialScenario(spec.seed, spec.trial);
  VAQ_ASSIGN_OR_RETURN(const TrialResult result,
                       RunTrial(scenario, spec.events, trial_options, &cache));
  report.trials_run = 1;
  ++report.trials_per_phase[PhaseName(scenario.phase)];
  MergeCoverage(result, &report);
  if (options.progress != nullptr) options.progress(result);
  if (result.failed()) {
    report.failure = result.violations;
    report.failed_trial = spec.trial;
    report.failed_phase = scenario.phase;
    report.original_events = static_cast<int64_t>(spec.events.size());
    report.reproducer = spec;
    report.replay_json = ReplayToJson(spec);
    report.replay_confirmed = true;  // This run IS the replay.
  }
  return report;
}

}  // namespace chaos
}  // namespace vaq
