// Multi-tenant weighted-fair front door (simulated).
//
// A deficit-round-robin scheduler over per-tenant FIFO queues, drained by a
// fixed pool of virtual workers on fault::SimClock time:
//
//   * Admission: an arrival is enqueued unless its tenant already has
//     queue_quota queries admitted-but-unfinished — queued plus in
//     service, the ServeOptions::tenant_quotas semantics — then it is
//     shed, charged to that tenant alone. The quota is the isolation
//     mechanism twice over: an abusive tenant offering 10x its rate is
//     shed at its own limit, and because in-service queries count, one
//     tenant can never hold more than queue_quota of the worker slots —
//     sizing quotas below num_workers leaves guaranteed headroom for
//     everyone else's percentiles.
//   * Scheduling: classic DRR with a per-tenant deficit denominated in
//     modeled milliseconds. Each visit tops the deficit up by
//     quantum_ms * weight; a tenant serves while its deficit covers the
//     head-of-line cost, then yields. Long queries cannot starve light
//     tenants — over any window each backlogged tenant gets service time
//     proportional to its weight.
//   * Accounting: per-tenant sojourn (completion - arrival) percentiles by
//     exact nearest-rank over all samples, SLO misses against the
//     tenant's deadline class, and shed/admit/complete counts. Published
//     as vaq_traffic_* metric families when record_metrics is set.
//
// The whole simulation is a pure function of (tenants, arrivals, costs,
// options): byte-identical reports for a given seed on any machine.
#ifndef VAQ_TRAFFIC_FRONT_DOOR_H_
#define VAQ_TRAFFIC_FRONT_DOOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/workload.h"

namespace vaq {
namespace traffic {

struct FrontDoorOptions {
  int num_workers = 4;       // Virtual service slots draining the queues.
  double quantum_ms = 5.0;   // DRR refill per visit (times tenant weight).
  bool record_metrics = true;  // Publish vaq_traffic_* families.
};

// Per-tenant accounting over the run.
struct TenantReport {
  std::string tenant;
  int64_t offered = 0;    // Arrivals addressed to this tenant.
  int64_t admitted = 0;   // Passed the quota gate.
  int64_t shed = 0;       // Rejected at the quota gate.
  int64_t completed = 0;
  int64_t slo_misses = 0;  // Sojourn above the tenant's slo_ms.
  double p50_ms = 0.0;     // Exact nearest-rank sojourn percentiles.
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  int max_queue = 0;       // High-water queue depth (<= queue_quota).
};

struct TrafficReport {
  std::vector<TenantReport> tenants;
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t completed = 0;
  double makespan_ms = 0.0;     // Virtual time the last query completed.
  double sustained_qps = 0.0;   // completed / makespan, in queries/s.

  // Deterministic multi-line rendering (one line per tenant + a total).
  std::string ToString() const;
};

// Runs the front-door simulation. `preset_cost_ms[p]` is the modeled
// service time of preset p (probe it once with a threads=0 serve::Server;
// see tools::RunTrafficDemo). Arrivals must be sorted by (at_ms, tenant),
// as GenerateArrivals emits them.
TrafficReport RunFrontDoor(const std::vector<TenantSpec>& tenants,
                           const std::vector<Arrival>& arrivals,
                           const std::vector<double>& preset_cost_ms,
                           const FrontDoorOptions& options = {});

}  // namespace traffic
}  // namespace vaq

#endif  // VAQ_TRAFFIC_FRONT_DOOR_H_
