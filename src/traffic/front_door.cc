#include "traffic/front_door.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>

#include "common/logging.h"
#include "fault/sim_clock.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"

namespace vaq {
namespace traffic {
namespace {

std::string FormatMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

// DRR state over the per-tenant FIFOs.
struct Scheduler {
  const std::vector<TenantSpec>* tenants;
  double quantum_ms = 5.0;
  std::vector<std::deque<Arrival>> queues;
  std::vector<double> deficit;
  int cursor = 0;
  int64_t queued = 0;

  // Picks the tenant whose head-of-line query is served next. Must only
  // be called with queued > 0. Each visit tops the tenant's deficit up by
  // one quantum * weight; a tenant whose deficit covers its head keeps
  // the floor (the cursor stays) until the deficit runs dry.
  int Select(const std::vector<double>& preset_cost_ms) {
    const int n = static_cast<int>(queues.size());
    while (true) {
      if (queues[static_cast<size_t>(cursor)].empty()) {
        cursor = (cursor + 1) % n;
        continue;
      }
      const Arrival& head = queues[static_cast<size_t>(cursor)].front();
      const double cost = preset_cost_ms[static_cast<size_t>(head.preset)];
      if (deficit[static_cast<size_t>(cursor)] >= cost) return cursor;
      deficit[static_cast<size_t>(cursor)] +=
          quantum_ms * (*tenants)[static_cast<size_t>(cursor)].weight;
      if (deficit[static_cast<size_t>(cursor)] >= cost) return cursor;
      cursor = (cursor + 1) % n;
    }
  }

  // Dequeues tenant t's head after Select chose it. When the remaining
  // deficit no longer covers the new head (or the queue drained), the
  // tenant's visit is over and the cursor moves on — Select tops a
  // tenant up at most once per visit, which is what bounds any tenant's
  // service share at weight/sum(weights) under saturation.
  Arrival Pop(int t, const std::vector<double>& preset_cost_ms) {
    Arrival head = queues[static_cast<size_t>(t)].front();
    queues[static_cast<size_t>(t)].pop_front();
    --queued;
    deficit[static_cast<size_t>(t)] -=
        preset_cost_ms[static_cast<size_t>(head.preset)];
    if (queues[static_cast<size_t>(t)].empty()) {
      // A tenant going idle forfeits its deficit (the DRR rule that
      // stops an idle tenant from banking service time).
      deficit[static_cast<size_t>(t)] = 0.0;
      cursor = (t + 1) % static_cast<int>(queues.size());
    } else if (deficit[static_cast<size_t>(t)] <
               preset_cost_ms[static_cast<size_t>(
                   queues[static_cast<size_t>(t)].front().preset)]) {
      cursor = (t + 1) % static_cast<int>(queues.size());
    }
    return head;
  }
};

}  // namespace

std::string TrafficReport::ToString() const {
  std::string out;
  for (const TenantReport& t : tenants) {
    out += "tenant " + t.tenant + ": offered=" + std::to_string(t.offered) +
           " admitted=" + std::to_string(t.admitted) +
           " shed=" + std::to_string(t.shed) +
           " completed=" + std::to_string(t.completed) +
           " slo_miss=" + std::to_string(t.slo_misses) +
           " p50=" + FormatMs(t.p50_ms) + "ms p99=" + FormatMs(t.p99_ms) +
           "ms p999=" + FormatMs(t.p999_ms) +
           "ms max_queue=" + std::to_string(t.max_queue) + "\n";
  }
  out += "total: offered=" + std::to_string(offered) +
         " admitted=" + std::to_string(admitted) +
         " shed=" + std::to_string(shed) +
         " completed=" + std::to_string(completed) +
         " makespan=" + FormatMs(makespan_ms) +
         "ms sustained_qps=" + FormatMs(sustained_qps) + "\n";
  return out;
}

TrafficReport RunFrontDoor(const std::vector<TenantSpec>& tenants,
                           const std::vector<Arrival>& arrivals,
                           const std::vector<double>& preset_cost_ms,
                           const FrontDoorOptions& options) {
  VAQ_CHECK_GT(options.num_workers, 0);
  VAQ_CHECK_GT(options.quantum_ms, 0.0);
  VAQ_CHECK(!tenants.empty());
  const size_t n = tenants.size();

  Scheduler sched;
  sched.tenants = &tenants;
  sched.quantum_ms = options.quantum_ms;
  sched.queues.resize(n);
  sched.deficit.assign(n, 0.0);

  TrafficReport report;
  report.tenants.resize(n);
  for (size_t i = 0; i < n; ++i) report.tenants[i].tenant = tenants[i].name;
  std::vector<std::vector<double>> sojourns(n);

  // Virtual workers: free_at[w] is when slot w can take its next query,
  // worker_tenant[w] whose query it is currently running (-1 idle).
  std::vector<double> free_at(static_cast<size_t>(options.num_workers), 0.0);
  std::vector<int> worker_tenant(static_cast<size_t>(options.num_workers),
                                 -1);

  const auto admit = [&](const Arrival& a) {
    TenantReport& t = report.tenants[static_cast<size_t>(a.tenant)];
    ++t.offered;
    ++report.offered;
    const TenantSpec& spec = tenants[static_cast<size_t>(a.tenant)];
    auto& queue = sched.queues[static_cast<size_t>(a.tenant)];
    // The quota counts admitted-but-unfinished: queued plus still in
    // service at the arrival instant (every dispatch at or before this
    // time has already been decided, so the scan is exact).
    int pending = static_cast<int>(queue.size());
    for (size_t w = 0; w < free_at.size(); ++w) {
      if (worker_tenant[w] == a.tenant && free_at[w] > a.at_ms) ++pending;
    }
    if (pending >= spec.queue_quota) {
      ++t.shed;
      ++report.shed;
      return;
    }
    queue.push_back(a);
    ++sched.queued;
    ++t.admitted;
    ++report.admitted;
    t.max_queue = std::max(t.max_queue, static_cast<int>(queue.size()));
  };
  fault::SimClock clock;
  size_t next = 0;

  while (true) {
    if (sched.queued == 0) {
      if (next >= arrivals.size()) break;
      clock.AdvanceTo(arrivals[next].at_ms);
      admit(arrivals[next]);
      ++next;
      continue;
    }
    // Earliest-free worker; ties break to the lowest index so the
    // schedule is deterministic.
    size_t w = 0;
    for (size_t i = 1; i < free_at.size(); ++i) {
      if (free_at[i] < free_at[w]) w = i;
    }
    const double dispatch_at = std::max(free_at[w], clock.now_ms());
    // Everything arriving by the dispatch instant joins the queues first
    // (admission sees the true queue depth at its own arrival time — the
    // queue cannot have drained in between, the workers were busy).
    while (next < arrivals.size() && arrivals[next].at_ms <= dispatch_at) {
      admit(arrivals[next]);
      ++next;
    }
    clock.AdvanceTo(dispatch_at);
    const int tenant = sched.Select(preset_cost_ms);
    const Arrival q = sched.Pop(tenant, preset_cost_ms);
    const double done_at =
        dispatch_at + preset_cost_ms[static_cast<size_t>(q.preset)];
    free_at[w] = done_at;
    worker_tenant[w] = tenant;
    TenantReport& t = report.tenants[static_cast<size_t>(tenant)];
    ++t.completed;
    ++report.completed;
    const double sojourn_ms = done_at - q.at_ms;
    sojourns[static_cast<size_t>(tenant)].push_back(sojourn_ms);
    if (sojourn_ms > tenants[static_cast<size_t>(tenant)].slo_ms) {
      ++t.slo_misses;
    }
    report.makespan_ms = std::max(report.makespan_ms, done_at);
  }

  for (size_t i = 0; i < n; ++i) {
    std::vector<double>& samples = sojourns[i];
    std::sort(samples.begin(), samples.end());
    TenantReport& t = report.tenants[i];
    t.p50_ms = obs::PercentileNearestRank(samples, 0.5);
    t.p99_ms = obs::PercentileNearestRank(samples, 0.99);
    t.p999_ms = obs::PercentileNearestRank(samples, 0.999);
    t.max_ms = samples.empty() ? 0.0 : samples.back();
  }
  if (report.makespan_ms > 0.0) {
    report.sustained_qps =
        static_cast<double>(report.completed) / (report.makespan_ms / 1000.0);
  }

  if (options.record_metrics) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    for (size_t i = 0; i < n; ++i) {
      const TenantReport& t = report.tenants[i];
      const obs::Labels by_tenant = {{"tenant", t.tenant}};
      registry.GetCounter("vaq_traffic_offered_total", by_tenant)
          ->Increment(t.offered);
      registry.GetCounter("vaq_traffic_shed_total", by_tenant)
          ->Increment(t.shed);
      registry.GetCounter("vaq_traffic_completed_total", by_tenant)
          ->Increment(t.completed);
      registry.GetCounter("vaq_traffic_slo_miss_total", by_tenant)
          ->Increment(t.slo_misses);
      const auto quantile = [&](const char* q) {
        obs::Labels labels = by_tenant;
        labels.emplace_back("quantile", q);
        return labels;
      };
      registry.GetGauge("vaq_traffic_sojourn_ms", quantile("0.5"))
          ->Set(t.p50_ms);
      registry.GetGauge("vaq_traffic_sojourn_ms", quantile("0.99"))
          ->Set(t.p99_ms);
      registry.GetGauge("vaq_traffic_sojourn_ms", quantile("0.999"))
          ->Set(t.p999_ms);
    }
  }
  return report;
}

}  // namespace traffic
}  // namespace vaq
