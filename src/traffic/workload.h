// Open-loop multi-tenant workload generation.
//
// The front door (src/traffic/front_door.h) is exercised by an *open-loop*
// arrival process: tenants offer queries on their own schedule, indifferent
// to how fast the system drains them — the regime where queueing delay and
// overload actually show up (a closed loop self-throttles and hides both).
//
// Arrivals are a non-homogeneous Poisson process per tenant, simulated by
// thinning: gaps are drawn from the peak rate and accepted with probability
// rate(t) / peak. The instantaneous rate composes independent random
// variables, MAGPIE-style:
//
//   rate(t) = base_qps
//           * (1 + diurnal_amplitude * sin(2*pi*t / diurnal_period_ms))
//           * (burst_factor     while t is inside a drawn burst window)
//           * (hotspot_factor   for hotspot tenants)
//           * (abusive_factor   for the designated abusive tenant)
//
// Everything is a pure function of (spec, seed): each tenant draws from its
// own Rng(MixSeed(seed, tenant)), so adding a tenant never perturbs another
// tenant's arrival times, and the merged timeline is sorted by
// (at_ms, tenant) — fully deterministic.
#ifndef VAQ_TRAFFIC_WORKLOAD_H_
#define VAQ_TRAFFIC_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vaq {
namespace traffic {

// One tenant of the front door.
struct TenantSpec {
  std::string name;        // "t0", "t1", ... — the {tenant=...} label.
  int weight = 1;          // Weighted-fair share (DRR quantum multiplier).
  // Admission quota: admitted-but-unfinished (queued + in service)
  // queries allowed before arrivals are shed.
  int queue_quota = 64;
  double rate_qps = 1.0;   // Mean offered rate at flat load, queries/s.
  double slo_ms = 250.0;   // Deadline class: sojourn above this is a miss.
  bool hotspot = false;    // Runs hot (hotspot_factor) the whole time.
  bool abusive = false;    // Offers abusive_factor times its fair rate.
};

// One offered query: a tenant asks for one of the scenario presets.
struct Arrival {
  double at_ms = 0.0;
  int tenant = 0;  // Index into the TenantSpec vector.
  int preset = 0;  // Index into the query-mix presets (see tools/).
};

// Generator parameters. Defaults produce a small, CI-friendly mix; the
// bench scales duration / rates up to millions of sessions.
struct WorkloadSpec {
  int num_tenants = 4;
  double duration_ms = 60'000.0;  // Virtual observation window.
  uint64_t seed = 1;
  double base_qps = 2.0;  // Per-tenant flat rate, queries per virtual second.

  // Diurnal curve: amplitude in [0, 1], one full cycle per period.
  double diurnal_amplitude = 0.5;
  double diurnal_period_ms = 20'000.0;

  // Burst windows: Poisson-arriving per-tenant windows of elevated rate.
  double bursts_per_min = 1.0;   // Expected windows per virtual minute.
  double burst_len_ms = 1'000.0;
  double burst_factor = 4.0;     // Rate multiplier inside a window.

  // Every hotspot_every-th tenant (0-indexed: tenants 0, k, 2k, ...) is a
  // hotspot. 0 disables.
  int hotspot_every = 3;
  double hotspot_factor = 2.0;

  // The designated abusive tenant (-1 for none) offers abusive_factor
  // times its configured rate — the isolation experiments shed it at its
  // quota and check everyone else's percentiles stayed put.
  int abusive_tenant = -1;
  double abusive_factor = 10.0;

  int num_presets = 4;   // Size of the query-mix preset pool.
  int queue_quota = 64;  // Per-tenant admission quota (TenantSpec).
  double slo_ms = 250.0;

  // Hard cap on generated arrivals — a mis-typed rate fails loudly in the
  // report (truncated = true) instead of eating all memory.
  size_t max_arrivals = 5'000'000;
};

// Derives the tenant table from a spec: names "t0"..; hotspot flags by
// hotspot_every; the abusive tenant marked; weights all 1 (fair split).
std::vector<TenantSpec> MakeTenants(const WorkloadSpec& spec);

// Generates the merged open-loop arrival timeline, sorted by
// (at_ms, tenant). `truncated` (optional) reports whether max_arrivals was
// hit. Pure function of `spec`.
std::vector<Arrival> GenerateArrivals(const WorkloadSpec& spec,
                                      bool* truncated = nullptr);

}  // namespace traffic
}  // namespace vaq

#endif  // VAQ_TRAFFIC_WORKLOAD_H_
