#include "traffic/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace vaq {
namespace traffic {
namespace {

// Salt for deriving per-tenant generator streams from the master seed.
constexpr uint64_t kTrafficSalt = 0x9bd1c4f2a75e3068ULL;

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Burst windows for one tenant: Poisson window starts, fixed length,
// non-overlapping (the next draw starts after the previous window ends).
std::vector<std::pair<double, double>> DrawBursts(Rng& rng,
                                                  const WorkloadSpec& spec) {
  std::vector<std::pair<double, double>> windows;
  if (spec.bursts_per_min <= 0.0 || spec.burst_len_ms <= 0.0 ||
      spec.burst_factor <= 1.0) {
    return windows;
  }
  const double starts_per_ms = spec.bursts_per_min / 60'000.0;
  double t = 0.0;
  while (true) {
    t += rng.Exponential(starts_per_ms);
    if (t >= spec.duration_ms) break;
    windows.emplace_back(t, t + spec.burst_len_ms);
    t += spec.burst_len_ms;
  }
  return windows;
}

}  // namespace

std::vector<TenantSpec> MakeTenants(const WorkloadSpec& spec) {
  VAQ_CHECK_GT(spec.num_tenants, 0);
  std::vector<TenantSpec> tenants;
  tenants.reserve(static_cast<size_t>(spec.num_tenants));
  for (int i = 0; i < spec.num_tenants; ++i) {
    TenantSpec tenant;
    tenant.name = "t" + std::to_string(i);
    tenant.weight = 1;
    tenant.queue_quota = spec.queue_quota;
    tenant.rate_qps = spec.base_qps;
    tenant.slo_ms = spec.slo_ms;
    tenant.hotspot = spec.hotspot_every > 0 && i % spec.hotspot_every == 0;
    tenant.abusive = i == spec.abusive_tenant;
    if (tenant.hotspot) tenant.rate_qps *= spec.hotspot_factor;
    tenants.push_back(std::move(tenant));
  }
  return tenants;
}

std::vector<Arrival> GenerateArrivals(const WorkloadSpec& spec,
                                      bool* truncated) {
  VAQ_CHECK_GT(spec.num_presets, 0);
  VAQ_CHECK_GE(spec.diurnal_amplitude, 0.0);
  VAQ_CHECK_LE(spec.diurnal_amplitude, 1.0);
  const std::vector<TenantSpec> tenants = MakeTenants(spec);
  std::vector<Arrival> arrivals;
  if (truncated != nullptr) *truncated = false;

  for (int i = 0; i < spec.num_tenants; ++i) {
    // Independent stream per tenant: tenant j's timeline never moves when
    // tenant k is added, removed, or turned abusive.
    Rng rng(MixSeed(MixSeed(spec.seed, kTrafficSalt),
                    static_cast<uint64_t>(i)));
    const std::vector<std::pair<double, double>> bursts =
        DrawBursts(rng, spec);
    const double abusive_mult = tenants[static_cast<size_t>(i)].abusive
                                    ? spec.abusive_factor
                                    : 1.0;
    const double flat_per_ms =
        tenants[static_cast<size_t>(i)].rate_qps * abusive_mult / 1'000.0;
    if (flat_per_ms <= 0.0) continue;
    const double burst_mult = spec.burst_factor > 1.0 ? spec.burst_factor
                                                      : 1.0;
    // Thinning: draw at the all-factors-on peak, accept at rate(t)/peak.
    const double peak_per_ms =
        flat_per_ms * (1.0 + spec.diurnal_amplitude) * burst_mult;
    size_t burst_cursor = 0;
    double t = 0.0;
    while (true) {
      t += rng.Exponential(peak_per_ms);
      if (t >= spec.duration_ms) break;
      while (burst_cursor < bursts.size() &&
             bursts[burst_cursor].second <= t) {
        ++burst_cursor;
      }
      const bool in_burst = burst_cursor < bursts.size() &&
                            bursts[burst_cursor].first <= t;
      double rate = flat_per_ms *
                    (1.0 + spec.diurnal_amplitude *
                               std::sin(kTwoPi * t / spec.diurnal_period_ms));
      if (in_burst) rate *= burst_mult;
      // The preset draw happens even for thinned-out points so the kept
      // arrivals' mix is independent of the acceptance pattern.
      const int preset =
          static_cast<int>(rng.UniformInt(
              static_cast<uint64_t>(spec.num_presets)));
      if (!rng.Bernoulli(rate / peak_per_ms)) continue;
      arrivals.push_back(Arrival{t, i, preset});
      if (arrivals.size() >= spec.max_arrivals) {
        if (truncated != nullptr) *truncated = true;
        break;
      }
    }
    if (arrivals.size() >= spec.max_arrivals) break;
  }

  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.at_ms != b.at_ms) return a.at_ms < b.at_ms;
              return a.tenant < b.tenant;
            });
  return arrivals;
}

}  // namespace traffic
}  // namespace vaq
