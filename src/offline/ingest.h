// Ingestion phase (§4.2).
//
// Executed once when a video enters the repository, in a query-independent
// manner: for *every* object type and action type the deployed models
// support, the ingestor materializes
//
//   (a) the clip score table {cid, Score} (Eqs. 7-8, ordered by score),
//       using the object tracker's per-track scores for objects and the
//       action recognizer's per-shot scores for actions; and
//   (b) the type's individual sequences P_{o_i} / P_{a_j}: maximal runs of
//       clips whose single-type indicator fired, determined with SVAQD
//       exactly as in the online case.
//
// The result is a storage::VideoIndex, persistable through
// storage::Catalog.
#ifndef VAQ_OFFLINE_INGEST_H_
#define VAQ_OFFLINE_INGEST_H_

#include "common/status.h"
#include "detect/models.h"
#include "fault/fault_plan.h"
#include "offline/scoring.h"
#include "online/svaqd.h"
#include "storage/catalog.h"
#include "synth/ground_truth.h"
#include "video/vocabulary.h"

namespace vaq {
namespace offline {

struct IngestOptions {
  // Options of the per-type SVAQD runs that produce individual sequences.
  online::SvaqdOptions indicator_options;
  // Only tracker detections scoring at least the tracker threshold enter
  // the object tables (standard detector post-filtering, §2).
  bool threshold_object_scores = true;
  // Fault injection (see src/fault/). When non-null, the per-type SVAQD
  // runs inherit this plan (model faults degrade individual sequences
  // gracefully) and the materialization of each score table goes through
  // simulated faulty storage: every page write may fail per the plan's
  // page_error_rate and is retried twice; a persistent fault aborts the
  // ingest with kUnavailable. Not owned; null (default) disables.
  const fault::FaultPlan* fault_plan = nullptr;
};

class Ingestor {
 public:
  // `vocab` enumerates every type the models support; must outlive the
  // ingestor.
  Ingestor(const Vocabulary* vocab, const ScoringModel* scoring,
           IngestOptions options);

  // Processes one video with the given models. This is the expensive,
  // inference-heavy pass (once per video). Fails only for injected
  // storage faults (kUnavailable) or malformed score rows.
  StatusOr<storage::VideoIndex> Ingest(
      const synth::GroundTruth& truth,
      const detect::ModelBundle& models) const;

 private:
  const Vocabulary* vocab_;
  const ScoringModel* scoring_;
  IngestOptions options_;
};

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_INGEST_H_
