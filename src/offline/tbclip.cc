#include "offline/tbclip.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace vaq {
namespace offline {

TbClipIterator::TbClipIterator(const QueryTables* tables,
                               ClipScoreSource* source,
                               const std::vector<bool>* skip)
    : tables_(tables),
      source_(source),
      skip_(skip),
      all_tables_(tables->AllTables()) {
  VAQ_CHECK(source != nullptr);
  VAQ_CHECK(skip != nullptr);
  VAQ_CHECK_EQ(static_cast<int64_t>(skip->size()), tables_->num_clips);
  const size_t n = static_cast<size_t>(tables_->num_clips);
  for (SideState& side : sides_) {
    side.seen_count.assign(n, 0);
    side.thresholds.assign(all_tables_.size(), 0.0);
  }
  // Before any row is read, the top side knows no ceiling.
  sides_[0].thresholds.assign(all_tables_.size(),
                              std::numeric_limits<double>::infinity());
  processed_.assign(n, false);
}

TbClipIterator::Entry TbClipIterator::SelectExtreme(bool top_side) {
  SideState& side = sides_[top_side ? 0 : 1];
  const int64_t num_tables = static_cast<int64_t>(all_tables_.size());
  const int64_t num_rows = tables_->num_clips;

  // Step 1: parallel sorted (or reverse) access until some complete clip
  // is unprocessed and unskipped.
  auto have_candidate = [&]() {
    // Drop decided clips from the front of the complete queue.
    while (side.complete_cursor <
           static_cast<int64_t>(side.complete.size())) {
      const ClipIndex c =
          side.complete[static_cast<size_t>(side.complete_cursor)];
      if (Usable(c)) return true;
      ++side.complete_cursor;
    }
    return false;
  };

  while (!have_candidate() && side.stamp < num_rows) {
    for (int64_t t = 0; t < num_tables; ++t) {
      const storage::ScoreRow row =
          top_side ? all_tables_[static_cast<size_t>(t)]->SortedRow(side.stamp)
                   : all_tables_[static_cast<size_t>(t)]->ReverseRow(
                         side.stamp);
      source_->NoteKnownEntry(static_cast<int>(t), row.clip, row.score);
      side.thresholds[static_cast<size_t>(t)] = row.score;
      int16_t& count = side.seen_count[static_cast<size_t>(row.clip)];
      if (count == 0) side.seen_list.push_back(row.clip);
      ++count;
      if (count == num_tables) side.complete.push_back(row.clip);
    }
    ++side.stamp;
  }
  if (!have_candidate()) return Entry{};  // Side exhausted.

  // Step 2: determine the extreme among the usable seen clips. Clips with
  // fully-known entries are scored for free; partially-known clips are
  // only completed by (counted) random accesses when their
  // threshold-filled bound could still beat the current extreme — this is
  // the "important difference" from a plain Fagin evaluation (§4.4): the
  // monotone score bound prunes most random accesses.
  Entry best;
  auto consider = [&](ClipIndex clip, double score) {
    if (!best.valid() ||
        (top_side ? score > best.score : score < best.score)) {
      best.clip = clip;
      best.score = score;
    }
  };
  std::vector<std::pair<double, ClipIndex>> pending;  // (bound, clip).
  for (ClipIndex clip : side.seen_list) {
    if (!Usable(clip)) continue;
    if (source_->HasScore(clip)) {
      consider(clip, source_->Score(clip));  // Cached: free.
    } else {
      pending.emplace_back(source_->BoundWith(clip, side.thresholds), clip);
    }
  }
  // Most promising bounds first (largest for top, smallest for bottom).
  std::sort(pending.begin(), pending.end(),
            [&](const auto& a, const auto& b) {
              return top_side ? a.first > b.first : a.first < b.first;
            });
  for (const auto& [bound, clip] : pending) {
    if (best.valid() &&
        (top_side ? bound <= best.score : bound >= best.score)) {
      break;  // No remaining clip can beat the extreme.
    }
    consider(clip, source_->Score(clip));
  }
  return best;
}

bool TbClipIterator::Next(Entry* top, Entry* bottom) {
  *top = SelectExtreme(/*top_side=*/true);
  *bottom = SelectExtreme(/*top_side=*/false);
  if (top->valid()) {
    processed_[static_cast<size_t>(top->clip)] = true;
    ++clips_processed_;
  }
  if (bottom->valid() && bottom->clip != top->clip) {
    processed_[static_cast<size_t>(bottom->clip)] = true;
    ++clips_processed_;
  }
  return top->valid() || bottom->valid();
}

}  // namespace offline
}  // namespace vaq
