// The TBClip iterator (Algorithm 5).
//
// Each invocation returns the unprocessed clip with the *highest* query
// score (c_top) and the one with the *lowest* (c_btm), using Fagin-style
// parallel sorted access from the top of every clip score table for c_top
// and parallel reverse access from the bottom for c_btm, plus random
// accesses to complete the scores of seen clips. Once at least one
// unprocessed clip has been seen in all tables (from a given side), the
// extreme of that side is guaranteed to be among the seen clips (monotone
// g; Fagin's argument with k = 1).
//
// Clips in the caller-supplied skip set are touched at most once during
// sorted access and never charged random accesses (§4.3, "Skipped Clips").
#ifndef VAQ_OFFLINE_TBCLIP_H_
#define VAQ_OFFLINE_TBCLIP_H_

#include <cstdint>
#include <vector>

#include "offline/query_view.h"

namespace vaq {
namespace offline {

class TbClipIterator {
 public:
  struct Entry {
    ClipIndex clip = -1;  // -1: this side is exhausted.
    double score = 0.0;
    bool valid() const { return clip >= 0; }
  };

  // `skip` may grow between Next() calls (RVAQ adds decided sequences);
  // all pointers must outlive the iterator.
  TbClipIterator(const QueryTables* tables, ClipScoreSource* source,
                 const std::vector<bool>* skip);

  // Produces the next top and bottom clips. Either side may come back
  // invalid when no candidate remains; returns false when both are
  // invalid. The same clip may be returned as both top and bottom when it
  // is the last one.
  bool Next(Entry* top, Entry* bottom);

  int64_t clips_processed() const { return clips_processed_; }

 private:
  // Advances one side's sorted cursor until a complete unprocessed,
  // unskipped candidate exists (or the tables are exhausted); then selects
  // the extreme over all seen clips of that side. `top_side` picks
  // direction.
  Entry SelectExtreme(bool top_side);

  bool Usable(ClipIndex clip) const {
    return !processed_[static_cast<size_t>(clip)] &&
           !(*skip_)[static_cast<size_t>(clip)];
  }

  const QueryTables* tables_;
  ClipScoreSource* source_;
  const std::vector<bool>* skip_;
  std::vector<const storage::ScoreTableView*> all_tables_;

  // Per-side state; index 0 = top, 1 = bottom.
  struct SideState {
    int64_t stamp = 0;                 // Next row rank to read.
    std::vector<int16_t> seen_count;   // Tables that delivered each clip.
    std::vector<ClipIndex> seen_list;  // Clips seen at least once.
    int64_t complete_cursor = 0;       // Scan start for candidate checks.
    std::vector<ClipIndex> complete;   // Clips seen in all tables.
    std::vector<double> thresholds;    // Last row score read per table.
  };
  SideState sides_[2];

  std::vector<bool> processed_;
  int64_t clips_processed_ = 0;
};

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_TBCLIP_H_
