#include "offline/baselines.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace vaq {
namespace offline {
namespace {

void ResetCounters(const QueryTables& tables) {
  for (const storage::ScoreTableView* t : tables.AllTables()) t->ResetCounter();
}

storage::AccessCounter CollectCounters(const QueryTables& tables) {
  storage::AccessCounter total;
  for (const storage::ScoreTableView* t : tables.AllTables()) {
    total += t->counter();
  }
  return total;
}

// Ranks the sequences of `pq` by exact score (all clip scores must be
// obtainable through `source`) and keeps the best `k`.
std::vector<RankedSequence> RankSequences(const IntervalSet& pq,
                                          const ScoringModel& scoring,
                                          ClipScoreSource& source,
                                          int64_t k) {
  std::vector<RankedSequence> ranked;
  ranked.reserve(pq.size());
  for (const Interval& iv : pq.intervals()) {
    RankedSequence seq;
    seq.clips = iv;
    double score = scoring.Identity();
    for (ClipIndex c = iv.lo; c <= iv.hi; ++c) {
      score = scoring.Combine(score, source.Score(c));
    }
    seq.exact_score = score;
    seq.lower_bound = score;
    seq.upper_bound = score;
    seq.has_exact = true;
    ranked.push_back(seq);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedSequence& a, const RankedSequence& b) {
                     return a.exact_score > b.exact_score;
                   });
  if (static_cast<int64_t>(ranked.size()) > k) {
    ranked.resize(static_cast<size_t>(k));
  }
  return ranked;
}

}  // namespace

TopKResult FaTopK(const QueryTables& tables, const ScoringModel& scoring,
                  int64_t k) {
  const auto start = std::chrono::steady_clock::now();
  ResetCounters(tables);
  TopKResult result;
  result.pq = tables.ComputePq();

  ClipScoreSource source(&tables, &scoring);
  const std::vector<const storage::ScoreTableView*> all = tables.AllTables();

  // Clips whose score FA must produce: all clips of all candidate
  // sequences.
  int64_t remaining = result.pq.TotalLength();
  std::vector<bool> needed(static_cast<size_t>(tables.num_clips), false);
  for (const Interval& iv : result.pq.intervals()) {
    for (ClipIndex c = iv.lo; c <= iv.hi; ++c) {
      needed[static_cast<size_t>(c)] = true;
    }
  }

  // Parallel sorted access; each produced clip inside P_q is completed by
  // random accesses at once (clips outside P_q are disregarded).
  for (int64_t rank = 0; rank < tables.num_clips && remaining > 0; ++rank) {
    for (size_t t = 0; t < all.size(); ++t) {
      const storage::ScoreRow row = all[t]->SortedRow(rank);
      source.NoteKnownEntry(static_cast<int>(t), row.clip, row.score);
      if (needed[static_cast<size_t>(row.clip)] &&
          !source.HasScore(row.clip)) {
        source.Score(row.clip);
        --remaining;
      }
    }
  }

  result.top = RankSequences(result.pq, scoring, source, k);
  result.accesses = CollectCounters(tables);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

TopKResult PqTraverse(const QueryTables& tables, const ScoringModel& scoring,
                      int64_t k) {
  const auto start = std::chrono::steady_clock::now();
  ResetCounters(tables);
  TopKResult result;
  result.pq = tables.ComputePq();

  // One contiguous range scan per (sequence, table): the clips of a
  // sequence are adjacent, so this baseline is all sequential I/O.
  std::vector<RankedSequence> ranked;
  ranked.reserve(result.pq.size());
  for (const Interval& iv : result.pq.intervals()) {
    RankedSequence seq;
    seq.clips = iv;
    seq.exact_score = ExactSequenceScore(tables, scoring, iv);
    seq.lower_bound = seq.exact_score;
    seq.upper_bound = seq.exact_score;
    seq.has_exact = true;
    ranked.push_back(seq);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedSequence& a, const RankedSequence& b) {
                     return a.exact_score > b.exact_score;
                   });
  if (static_cast<int64_t>(ranked.size()) > k) {
    ranked.resize(static_cast<size_t>(k));
  }
  result.top = std::move(ranked);
  result.accesses = CollectCounters(tables);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace offline
}  // namespace vaq
