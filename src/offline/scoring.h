// Scoring-function framework of §4.1.
//
// A scoring model supplies the three levels of aggregation the paper
// defines, under the constraints that make top-k pruning sound:
//
//   h — combines the raw model scores of one type within one clip into the
//       type's clip score S_{o_i}^(c) / S_{a_j}^(c) (Eqs. 7-8; no
//       constraints);
//   g — combines the per-predicate clip scores into the clip score
//       S_q^(c) (Eq. 9; must be monotone in every argument);
//   f — combines clip scores into a sequence score S_q^(z) (Eq. 10; must
//       be monotone, sub-sequence-dominated, and decomposable through an
//       associative/commutative aggregation operator ⊙, Eq. 11). The
//       decomposition is exposed as a monoid: Identity(), Combine(a, b)
//       and Repeat(x, n) = f(x, ..., x) n times, which RVAQ uses to bound
//       partially-observed sequences (Eqs. 13-14).
//
// g receives the per-table clip scores together with a `TableSchema`
// describing how the tables relate to the query: the conjunctive layout
// (objects then action; the paper's §5 instantiation `PaperScoring` uses
// g = S_a * Σ S_{o_i}) or the general CNF layout of clauses over distinct
// literals (`CnfScoring` uses g = Π_clauses Σ_literals, monotone in every
// table).
#ifndef VAQ_OFFLINE_SCORING_H_
#define VAQ_OFFLINE_SCORING_H_

#include <cstdint>
#include <vector>

namespace vaq {
namespace offline {

// How a query's bound tables map onto its predicates. Tables are indexed
// in QueryTables order.
struct TableSchema {
  // Conjunctive layout: tables [0, num_objects) are object predicates in
  // query order; table num_objects (when has_action) is the action.
  int num_objects = 0;
  bool has_action = false;
  // CNF layout: table indices per clause (every conjunctive query also
  // fills this with singleton clauses, so P_q computation is uniform).
  std::vector<std::vector<int>> clauses;
};

class ScoringModel {
 public:
  virtual ~ScoringModel() = default;

  // h: aggregates the raw detection scores of one type within one clip.
  // The default sums them.
  virtual double AggregateTypeScores(const std::vector<double>& scores) const;

  // g: the clip score from the per-table clip scores (§4.1 Eq. 9). Must
  // be monotone non-decreasing in every entry of `table_scores`.
  virtual double ClipScore(const std::vector<double>& table_scores,
                           const TableSchema& schema) const = 0;

  // The ⊙ monoid through which f decomposes.
  virtual double Identity() const = 0;
  virtual double Combine(double a, double b) const = 0;
  // f applied to n copies of x (n >= 0).
  virtual double Repeat(double x, int64_t n) const = 0;
};

// The paper's experimental scoring functions (§5): additive h and f,
// multiplicative-bridge g = S_a * (Σ_i S_{o_i}). For action-free queries
// g degrades to Σ_i S_{o_i}; for object-free queries to S_a. Requires a
// conjunctive schema.
class PaperScoring : public ScoringModel {
 public:
  double ClipScore(const std::vector<double>& table_scores,
                   const TableSchema& schema) const override;
  double Identity() const override { return 0.0; }
  double Combine(double a, double b) const override { return a + b; }
  double Repeat(double x, int64_t n) const override {
    return x * static_cast<double>(n);
  }
};

// CNF generalization: g = Π_clauses (Σ_{literals in clause} score) — each
// clause contributes its best evidence additively, clauses combine
// multiplicatively (all must hold). Monotone in every table. For a
// conjunctive query lifted to singleton clauses this is Π of the
// predicate scores.
class CnfScoring : public ScoringModel {
 public:
  double ClipScore(const std::vector<double>& table_scores,
                   const TableSchema& schema) const override;
  double Identity() const override { return 0.0; }
  double Combine(double a, double b) const override { return a + b; }
  double Repeat(double x, int64_t n) const override {
    return x * static_cast<double>(n);
  }
};

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_SCORING_H_
