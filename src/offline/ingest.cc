#include "offline/ingest.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaq {
namespace offline {
namespace {

// Simulated materialization of one score table through faulty storage
// (mirrors PageCache's read-retry discipline on the write side): each
// 4096-byte page write may fail per the plan and is retried with a fresh
// attempt nonce; three consecutive failures abort the ingest. Tables get
// disjoint page-id ranges so their fault streams are independent.
Status MaterializeTable(const fault::FaultPlan* plan, int64_t table_ordinal,
                        int64_t num_rows) {
  if (plan == nullptr || plan->spec().page_error_rate <= 0.0) {
    return Status::OK();
  }
  constexpr int64_t kPageBytes = 4096;
  constexpr int64_t kRowBytes = 24;  // Sorted row + by-clip projection.
  constexpr int64_t kMaxAttempts = 3;
  const int64_t pages = 1 + (num_rows * kRowBytes + kPageBytes - 1) / kPageBytes;
  for (int64_t p = 0; p < pages; ++p) {
    const int64_t page_id = table_ordinal * (int64_t{1} << 32) + p;
    int64_t failed = 0;
    while (failed < kMaxAttempts && plan->PageReadFails(page_id, failed)) {
      ++failed;
    }
    if (failed == kMaxAttempts) {
      return Status::Unavailable(
          "storage fault persisted while materializing table " +
          std::to_string(table_ordinal) + " (page " + std::to_string(p) +
          ")");
    }
  }
  return Status::OK();
}

}  // namespace

Ingestor::Ingestor(const Vocabulary* vocab, const ScoringModel* scoring,
                   IngestOptions options)
    : vocab_(vocab), scoring_(scoring), options_(std::move(options)) {
  VAQ_CHECK(vocab != nullptr);
  VAQ_CHECK(scoring != nullptr);
}

StatusOr<storage::VideoIndex> Ingestor::Ingest(
    const synth::GroundTruth& truth,
    const detect::ModelBundle& models) const {
  VAQ_TRACE_SPAN("ingest/run");
  obs::Counter* metric_tables = obs::MetricRegistry::Global().GetCounter(
      "vaq_ingest_tables_built_total");
  const VideoLayout& layout = truth.layout();
  const int64_t num_clips = layout.NumClips();
  storage::VideoIndex index;
  index.video_id = truth.video_id();
  index.num_clips = num_clips;

  online::SvaqdOptions indicator_options = options_.indicator_options;
  if (options_.fault_plan != nullptr) {
    indicator_options.fault_plan = options_.fault_plan;
  }
  int64_t table_ordinal = 0;

  // --- Object types: tracker-scored tables + SVAQD individual sequences.
  for (ObjectTypeId type = 0; type < vocab_->num_object_types(); ++type) {
    VAQ_TRACE_SPAN("ingest/object_table");
    storage::TypeIndex entry;
    entry.type_id = type;
    entry.type_name = vocab_->ObjectTypeName(type);

    std::vector<storage::ScoreTable::Row> rows(
        static_cast<size_t>(num_clips));
    std::vector<std::pair<FrameIndex, detect::TrackDetection>> detections;
    std::vector<double> scores;
    const double threshold = models.tracker->profile().threshold;
    for (ClipIndex c = 0; c < num_clips; ++c) {
      detections.clear();
      models.tracker->DetectRange(type, layout.ClipFrameRange(c),
                                  &detections);
      scores.clear();
      for (const auto& [frame, det] : detections) {
        if (!options_.threshold_object_scores || det.score >= threshold) {
          scores.push_back(det.score);
        }
      }
      rows[static_cast<size_t>(c)] = {c,
                                      scoring_->AggregateTypeScores(scores)};
    }
    VAQ_ASSIGN_OR_RETURN(entry.table,
                         storage::ScoreTable::Build(std::move(rows)));
    VAQ_RETURN_IF_ERROR(
        MaterializeTable(options_.fault_plan, table_ordinal++, num_clips));
    metric_tables->Increment();

    // Individual sequences via a single-predicate SVAQD run (§4.2).
    QuerySpec single;
    single.objects = {type};
    online::Svaqd svaqd(single, layout, indicator_options);
    entry.sequences =
        svaqd.Run(models.detector.get(), /*recognizer=*/nullptr).sequences;
    index.objects.push_back(std::move(entry));
  }

  // --- Action types: recognizer-scored tables + SVAQD individual
  // sequences.
  for (ActionTypeId type = 0; type < vocab_->num_action_types(); ++type) {
    VAQ_TRACE_SPAN("ingest/action_table");
    storage::TypeIndex entry;
    entry.type_id = type;
    entry.type_name = vocab_->ActionTypeName(type);

    std::vector<storage::ScoreTable::Row> rows(
        static_cast<size_t>(num_clips));
    std::vector<double> scores;
    for (ClipIndex c = 0; c < num_clips; ++c) {
      const Interval shots = layout.ClipShotRange(c);
      scores.clear();
      for (ShotIndex s = shots.lo; s <= shots.hi; ++s) {
        scores.push_back(models.recognizer->Score(type, s));
      }
      rows[static_cast<size_t>(c)] = {c,
                                      scoring_->AggregateTypeScores(scores)};
    }
    VAQ_ASSIGN_OR_RETURN(entry.table,
                         storage::ScoreTable::Build(std::move(rows)));
    VAQ_RETURN_IF_ERROR(
        MaterializeTable(options_.fault_plan, table_ordinal++, num_clips));
    metric_tables->Increment();

    QuerySpec single;
    single.action = type;
    online::Svaqd svaqd(single, layout, indicator_options);
    entry.sequences =
        svaqd.Run(/*detector=*/nullptr, models.recognizer.get()).sequences;
    index.actions.push_back(std::move(entry));
  }
  return index;
}

}  // namespace offline
}  // namespace vaq
