#include "offline/ingest.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace vaq {
namespace offline {

Ingestor::Ingestor(const Vocabulary* vocab, const ScoringModel* scoring,
                   IngestOptions options)
    : vocab_(vocab), scoring_(scoring), options_(std::move(options)) {
  VAQ_CHECK(vocab != nullptr);
  VAQ_CHECK(scoring != nullptr);
}

storage::VideoIndex Ingestor::Ingest(const synth::GroundTruth& truth,
                                     const detect::ModelBundle& models) const {
  const VideoLayout& layout = truth.layout();
  const int64_t num_clips = layout.NumClips();
  storage::VideoIndex index;
  index.video_id = truth.video_id();
  index.num_clips = num_clips;

  // --- Object types: tracker-scored tables + SVAQD individual sequences.
  for (ObjectTypeId type = 0; type < vocab_->num_object_types(); ++type) {
    storage::TypeIndex entry;
    entry.type_id = type;
    entry.type_name = vocab_->ObjectTypeName(type);

    std::vector<storage::ScoreTable::Row> rows(
        static_cast<size_t>(num_clips));
    std::vector<std::pair<FrameIndex, detect::TrackDetection>> detections;
    std::vector<double> scores;
    const double threshold = models.tracker->profile().threshold;
    for (ClipIndex c = 0; c < num_clips; ++c) {
      detections.clear();
      models.tracker->DetectRange(type, layout.ClipFrameRange(c),
                                  &detections);
      scores.clear();
      for (const auto& [frame, det] : detections) {
        if (!options_.threshold_object_scores || det.score >= threshold) {
          scores.push_back(det.score);
        }
      }
      rows[static_cast<size_t>(c)] = {c,
                                      scoring_->AggregateTypeScores(scores)};
    }
    auto table = storage::ScoreTable::Build(std::move(rows));
    VAQ_CHECK(table.ok()) << table.status().ToString();
    entry.table = std::move(table).value();

    // Individual sequences via a single-predicate SVAQD run (§4.2).
    QuerySpec single;
    single.objects = {type};
    online::Svaqd svaqd(single, layout, options_.indicator_options);
    entry.sequences =
        svaqd.Run(models.detector.get(), /*recognizer=*/nullptr).sequences;
    index.objects.push_back(std::move(entry));
  }

  // --- Action types: recognizer-scored tables + SVAQD individual
  // sequences.
  for (ActionTypeId type = 0; type < vocab_->num_action_types(); ++type) {
    storage::TypeIndex entry;
    entry.type_id = type;
    entry.type_name = vocab_->ActionTypeName(type);

    std::vector<storage::ScoreTable::Row> rows(
        static_cast<size_t>(num_clips));
    std::vector<double> scores;
    for (ClipIndex c = 0; c < num_clips; ++c) {
      const Interval shots = layout.ClipShotRange(c);
      scores.clear();
      for (ShotIndex s = shots.lo; s <= shots.hi; ++s) {
        scores.push_back(models.recognizer->Score(type, s));
      }
      rows[static_cast<size_t>(c)] = {c,
                                      scoring_->AggregateTypeScores(scores)};
    }
    auto table = storage::ScoreTable::Build(std::move(rows));
    VAQ_CHECK(table.ok()) << table.status().ToString();
    entry.table = std::move(table).value();

    QuerySpec single;
    single.action = type;
    online::Svaqd svaqd(single, layout, options_.indicator_options);
    entry.sequences =
        svaqd.Run(/*detector=*/nullptr, models.recognizer.get()).sequences;
    index.actions.push_back(std::move(entry));
  }
  return index;
}

}  // namespace offline
}  // namespace vaq
