#include "offline/scoring.h"

#include "common/logging.h"

namespace vaq {
namespace offline {

double ScoringModel::AggregateTypeScores(
    const std::vector<double>& scores) const {
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum;
}

double PaperScoring::ClipScore(const std::vector<double>& table_scores,
                               const TableSchema& schema) const {
  VAQ_CHECK_EQ(static_cast<int>(table_scores.size()),
               schema.num_objects + (schema.has_action ? 1 : 0));
  double object_sum = 0.0;
  for (int i = 0; i < schema.num_objects; ++i) object_sum += table_scores[i];
  if (!schema.has_action) return object_sum;
  const double action_score = table_scores[schema.num_objects];
  if (schema.num_objects == 0) return action_score;
  return action_score * object_sum;
}

double CnfScoring::ClipScore(const std::vector<double>& table_scores,
                             const TableSchema& schema) const {
  VAQ_CHECK(!schema.clauses.empty());
  double product = 1.0;
  for (const std::vector<int>& clause : schema.clauses) {
    double clause_sum = 0.0;
    for (int table : clause) {
      clause_sum += table_scores[static_cast<size_t>(table)];
    }
    product *= clause_sum;
  }
  return product;
}

}  // namespace offline
}  // namespace vaq
