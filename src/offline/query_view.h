// Query-time view over ingested metadata.
//
// `QueryTables` binds a resolved query — conjunctive (QuerySpec) or CNF
// (CnfQuery, §2 footnotes 3-4) — to the per-predicate score tables and
// individual sequences of one ingested video. Tables are held in distinct-
// literal order together with a TableSchema describing how they map onto
// the query's predicates; `ComputePq` evaluates
// P_q = ⋂_clauses ⋃_literals P_literal (Eq. 12 generalized — for a
// conjunction every clause is a single literal) by interval sweep.
//
// `ClipScoreSource` computes full clip scores S_q^(c) (Eq. 9) on demand,
// charging random accesses only for table entries not already known from
// sorted/reverse accesses, and caching every computed score — mirroring a
// buffer pool over the clip score tables.
#ifndef VAQ_OFFLINE_QUERY_VIEW_H_
#define VAQ_OFFLINE_QUERY_VIEW_H_

#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "offline/scoring.h"
#include "storage/catalog.h"
#include "video/cnf_query.h"
#include "video/query_spec.h"
#include "video/vocabulary.h"

namespace vaq {
namespace offline {

// The per-predicate ingested metadata a query touches. All pointers refer
// into a VideoIndex that must outlive this view.
struct QueryTables {
  // One entry per distinct literal, objects-then-action for conjunctive
  // binds, first-appearance order for CNF binds.
  std::vector<const storage::ScoreTableView*> tables;
  std::vector<const IntervalSet*> sequences;
  TableSchema schema;
  int64_t num_clips = 0;

  // Binds a conjunctive query to `index`; fails if a queried type was not
  // ingested. Table order: objects in query order, then the action.
  static StatusOr<QueryTables> Bind(const storage::VideoIndex& index,
                                    const QuerySpec& query,
                                    const Vocabulary& vocab);

  // Binds a CNF query (repeated literals share one table).
  static StatusOr<QueryTables> BindCnf(const storage::VideoIndex& index,
                                       const CnfQuery& query,
                                       const Vocabulary& vocab);

  int num_tables() const { return static_cast<int>(tables.size()); }

  // All tables in schema order.
  const std::vector<const storage::ScoreTableView*>& AllTables() const {
    return tables;
  }

  // P_q per the generalized Eq. 12.
  IntervalSet ComputePq() const;
};

// Exact score of a candidate sequence via one contiguous range scan per
// table (§4.2: clips of a sequence are physically adjacent in the by-clip
// projection, so Pq-Traverse and winner finalization pay one seek per
// (sequence, table) plus sequential rows).
double ExactSequenceScore(const QueryTables& tables,
                          const ScoringModel& scoring, const Interval& seq);

// Caching, access-counted clip score computation.
class ClipScoreSource {
 public:
  ClipScoreSource(const QueryTables* tables, const ScoringModel* scoring);

  // Full clip score; random-accesses only the tables whose entry for
  // `clip` is not yet known. Cached: a second call is free.
  double Score(ClipIndex clip);

  // Records a table entry learned through sorted/reverse access so a later
  // Score() does not pay a random access for it. `table_idx` indexes
  // QueryTables::AllTables().
  void NoteKnownEntry(int table_idx, ClipIndex clip, double score);

  bool HasScore(ClipIndex clip) const {
    return full_known_[static_cast<size_t>(clip)];
  }

  // Number of per-table entries of `clip` that a Score() call would still
  // have to fetch by random access (0 when fully known/cached).
  int64_t MissingEntries(ClipIndex clip) const;

  // Score bound for a partially-known clip: evaluates g with the known
  // entries and `fill[t]` substituted for each unknown table entry.
  // Charges no accesses and caches nothing. With per-table sorted-access
  // thresholds as fills this upper-bounds the clip score; with reverse
  // thresholds it lower-bounds it (monotone g).
  double BoundWith(ClipIndex clip, const std::vector<double>& fill) const;

 private:
  const QueryTables* tables_;
  const ScoringModel* scoring_;
  // Per table: known entry values (indexed by clip) and known flags.
  std::vector<std::vector<double>> entry_value_;
  std::vector<std::vector<bool>> entry_known_;
  std::vector<double> full_score_;
  std::vector<bool> full_known_;
};

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_QUERY_VIEW_H_
