// Repository-wide ranked retrieval.
//
// §4.2 notes that multiple videos are handled "by associating a video
// identifier to each clip identifier"; this module supplies that layer: a
// `Repository` of ingested videos answers one top-K query *globally*, by
// running RVAQ per video with the same K and merging the per-video
// winners (the global top-K is necessarily contained in the union of the
// per-video top-Ks, since scores do not interact across videos). Binding
// is by type *name*, so videos ingested with different vocabularies can
// coexist.
#ifndef VAQ_OFFLINE_REPOSITORY_H_
#define VAQ_OFFLINE_REPOSITORY_H_

#include <map>
#include <string>
#include <vector>

#include "offline/rvaq.h"
#include "storage/catalog.h"

namespace vaq {
namespace offline {

// Binds a conjunctive query to one ingested video by type names (the
// lookup used by the repository and the SQL session).
StatusOr<QueryTables> BindByName(const storage::VideoIndex& index,
                                 const std::string& action,
                                 const std::vector<std::string>& objects);

// One globally-ranked result.
struct RepositoryRankedSequence {
  std::string video;  // Repository name of the source video.
  RankedSequence sequence;
};

// The merge key of the global sort: the exact score when RVAQ resolved
// one, the lower bound otherwise.
double RankedMergeScore(const RankedSequence& sequence);

// The global merge step of Repository::TopK, exposed so the cluster
// coordinator reproduces single-node results *by construction*: callers
// assemble candidates in (video name, per-video rank) order, and this
// stable-sorts by RankedMergeScore descending and truncates to `k`.
void MergeRankedCandidates(std::vector<RepositoryRankedSequence>* candidates,
                           int64_t k);

// One video's contribution to a repository query: binds the conjunctive
// query by type names and runs RVAQ. kNotFound means the video did not
// ingest one of the queried types (callers count it as skipped).
StatusOr<TopKResult> QueryVideoTopK(const storage::VideoIndex& index,
                                    const std::string& action,
                                    const std::vector<std::string>& objects,
                                    const ScoringModel& scoring,
                                    RvaqOptions options);

struct RepositoryTopKResult {
  std::vector<RepositoryRankedSequence> top;  // Best first.
  storage::AccessCounter accesses;            // Summed across videos.
  int64_t videos_queried = 0;
  int64_t videos_skipped = 0;   // Videos missing a queried type.
  int64_t candidate_sequences = 0;
  // Cascade pre-filter accounting (0 on the exact path): videos whose
  // every clip the proxy ruled out, and candidate sequences dropped
  // inside queried videos.
  int64_t videos_pruned = 0;
  int64_t candidates_pruned = 0;
  double wall_ms = 0.0;
};

// A named collection of ingested videos.
class Repository {
 public:
  Repository() = default;

  // Registers (or replaces) a video. The repository stores the index.
  void Add(const std::string& name, storage::VideoIndex index);

  // Loads every video of a catalog.
  Status AddFromCatalog(const storage::Catalog& catalog);

  // Drops a video from the repository; false when absent.
  bool Remove(const std::string& name);

  size_t num_videos() const { return videos_.size(); }
  std::vector<std::string> VideoNames() const;
  const storage::VideoIndex* Find(const std::string& name) const;

  // Global top-K for a conjunctive query given by names. Videos that did
  // not ingest one of the queried types contribute no candidates (they
  // are counted in videos_skipped). `options.k` is the global K.
  StatusOr<RepositoryTopKResult> TopK(const std::string& action,
                                      const std::vector<std::string>& objects,
                                      const ScoringModel& scoring,
                                      RvaqOptions options) const;

 private:
  std::map<std::string, storage::VideoIndex> videos_;
};

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_REPOSITORY_H_
