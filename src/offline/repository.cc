#include "offline/repository.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace vaq {
namespace offline {

StatusOr<QueryTables> BindByName(const storage::VideoIndex& index,
                                 const std::string& action,
                                 const std::vector<std::string>& objects) {
  QueryTables out;
  out.num_clips = index.num_clips;
  for (const std::string& name : objects) {
    const storage::TypeIndex* entry = index.FindObjectByName(name);
    if (entry == nullptr) {
      return Status::NotFound("object type not ingested: " + name);
    }
    out.schema.clauses.push_back({static_cast<int>(out.tables.size())});
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  out.schema.num_objects = static_cast<int>(out.tables.size());
  if (!action.empty()) {
    const storage::TypeIndex* entry = index.FindActionByName(action);
    if (entry == nullptr) {
      return Status::NotFound("action type not ingested: " + action);
    }
    out.schema.has_action = true;
    out.schema.clauses.push_back({static_cast<int>(out.tables.size())});
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  if (out.num_tables() == 0) {
    return Status::InvalidArgument("query touches no tables");
  }
  return out;
}

void Repository::Add(const std::string& name, storage::VideoIndex index) {
  videos_.insert_or_assign(name, std::move(index));
}

Status Repository::AddFromCatalog(const storage::Catalog& catalog) {
  for (const std::string& name : catalog.ListVideos()) {
    VAQ_ASSIGN_OR_RETURN(storage::VideoIndex index, catalog.Load(name));
    Add(name, std::move(index));
  }
  return Status::OK();
}

bool Repository::Remove(const std::string& name) {
  return videos_.erase(name) > 0;
}

std::vector<std::string> Repository::VideoNames() const {
  std::vector<std::string> names;
  names.reserve(videos_.size());
  for (const auto& [name, index] : videos_) names.push_back(name);
  return names;
}

const storage::VideoIndex* Repository::Find(const std::string& name) const {
  auto it = videos_.find(name);
  return it == videos_.end() ? nullptr : &it->second;
}

StatusOr<RepositoryTopKResult> Repository::TopK(
    const std::string& action, const std::vector<std::string>& objects,
    const ScoringModel& scoring, RvaqOptions options) const {
  const auto start = std::chrono::steady_clock::now();
  if (videos_.empty()) {
    return Status::FailedPrecondition("repository holds no videos");
  }
  RepositoryTopKResult result;
  for (const auto& [name, index] : videos_) {
    auto tables_or = BindByName(index, action, objects);
    if (!tables_or.ok()) {
      if (tables_or.status().code() == StatusCode::kNotFound) {
        ++result.videos_skipped;  // This video cannot match the query.
        continue;
      }
      return tables_or.status();
    }
    ++result.videos_queried;
    const TopKResult video_top =
        Rvaq(&tables_or.value(), &scoring, options).Run();
    result.accesses += video_top.accesses;
    result.candidate_sequences +=
        static_cast<int64_t>(video_top.pq.size());
    for (const RankedSequence& seq : video_top.top) {
      result.top.push_back(RepositoryRankedSequence{name, seq});
    }
  }
  // Merge: sort by exact score when available, lower bound otherwise.
  std::stable_sort(
      result.top.begin(), result.top.end(),
      [](const RepositoryRankedSequence& a,
         const RepositoryRankedSequence& b) {
        const double sa = a.sequence.has_exact ? a.sequence.exact_score
                                               : a.sequence.lower_bound;
        const double sb = b.sequence.has_exact ? b.sequence.exact_score
                                               : b.sequence.lower_bound;
        return sa > sb;
      });
  if (static_cast<int64_t>(result.top.size()) > options.k) {
    result.top.resize(static_cast<size_t>(options.k));
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace offline
}  // namespace vaq
