#include "offline/repository.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vaq {
namespace offline {

StatusOr<QueryTables> BindByName(const storage::VideoIndex& index,
                                 const std::string& action,
                                 const std::vector<std::string>& objects) {
  QueryTables out;
  out.num_clips = index.num_clips;
  for (const std::string& name : objects) {
    const storage::TypeIndex* entry = index.FindObjectByName(name);
    if (entry == nullptr) {
      return Status::NotFound("object type not ingested: " + name);
    }
    out.schema.clauses.push_back({static_cast<int>(out.tables.size())});
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  out.schema.num_objects = static_cast<int>(out.tables.size());
  if (!action.empty()) {
    const storage::TypeIndex* entry = index.FindActionByName(action);
    if (entry == nullptr) {
      return Status::NotFound("action type not ingested: " + action);
    }
    out.schema.has_action = true;
    out.schema.clauses.push_back({static_cast<int>(out.tables.size())});
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  if (out.num_tables() == 0) {
    return Status::InvalidArgument("query touches no tables");
  }
  return out;
}

double RankedMergeScore(const RankedSequence& sequence) {
  return sequence.has_exact ? sequence.exact_score : sequence.lower_bound;
}

void MergeRankedCandidates(std::vector<RepositoryRankedSequence>* candidates,
                           int64_t k) {
  // Merge: sort by exact score when available, lower bound otherwise.
  std::stable_sort(candidates->begin(), candidates->end(),
                   [](const RepositoryRankedSequence& a,
                      const RepositoryRankedSequence& b) {
                     return RankedMergeScore(a.sequence) >
                            RankedMergeScore(b.sequence);
                   });
  if (static_cast<int64_t>(candidates->size()) > k) {
    candidates->resize(static_cast<size_t>(k));
  }
}

StatusOr<TopKResult> QueryVideoTopK(const storage::VideoIndex& index,
                                    const std::string& action,
                                    const std::vector<std::string>& objects,
                                    const ScoringModel& scoring,
                                    RvaqOptions options) {
  VAQ_ASSIGN_OR_RETURN(QueryTables tables,
                       BindByName(index, action, objects));
  return Rvaq(&tables, &scoring, options).Run();
}

void Repository::Add(const std::string& name, storage::VideoIndex index) {
  videos_.insert_or_assign(name, std::move(index));
}

Status Repository::AddFromCatalog(const storage::Catalog& catalog) {
  for (const std::string& name : catalog.ListVideos()) {
    VAQ_ASSIGN_OR_RETURN(storage::VideoIndex index, catalog.Load(name));
    Add(name, std::move(index));
  }
  return Status::OK();
}

bool Repository::Remove(const std::string& name) {
  return videos_.erase(name) > 0;
}

std::vector<std::string> Repository::VideoNames() const {
  std::vector<std::string> names;
  names.reserve(videos_.size());
  for (const auto& [name, index] : videos_) names.push_back(name);
  return names;
}

const storage::VideoIndex* Repository::Find(const std::string& name) const {
  auto it = videos_.find(name);
  return it == videos_.end() ? nullptr : &it->second;
}

StatusOr<RepositoryTopKResult> Repository::TopK(
    const std::string& action, const std::vector<std::string>& objects,
    const ScoringModel& scoring, RvaqOptions options) const {
  const auto start = std::chrono::steady_clock::now();
  if (videos_.empty()) {
    return Status::FailedPrecondition("repository holds no videos");
  }
  RepositoryTopKResult result;
  for (const auto& [name, index] : videos_) {
    if (options.prefilter != nullptr) {
      const IntervalSet* surviving = options.prefilter->SurvivingClips(name);
      if (surviving != nullptr && surviving->empty()) {
        // The proxy ruled out every clip: no table is even bound.
        ++result.videos_pruned;
        obs::MetricRegistry::Global()
            .GetCounter("vaq_cascade_videos_pruned_total")
            ->Increment(1);
        continue;
      }
      options.clip_filter = surviving;  // nullptr: unconstrained video.
    }
    auto top_or = QueryVideoTopK(index, action, objects, scoring, options);
    if (!top_or.ok()) {
      if (top_or.status().code() == StatusCode::kNotFound) {
        ++result.videos_skipped;  // This video cannot match the query.
        continue;
      }
      return top_or.status();
    }
    ++result.videos_queried;
    const TopKResult& video_top = top_or.value();
    result.accesses += video_top.accesses;
    result.candidate_sequences +=
        static_cast<int64_t>(video_top.pq.size());
    result.candidates_pruned += video_top.candidates_pruned;
    for (const RankedSequence& seq : video_top.top) {
      result.top.push_back(RepositoryRankedSequence{name, seq});
    }
  }
  MergeRankedCandidates(&result.top, options.k);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace offline
}  // namespace vaq
