#include "offline/rvaq.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "offline/tbclip.h"
#include "storage/access_metrics.h"

namespace vaq {
namespace offline {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bound-tracking state of one candidate sequence (§4.3 notation).
struct SeqState {
  Interval clips;
  double s_up;   // f over top-processed clips.
  double s_lo;   // f over bottom-processed clips.
  int64_t l_up;  // Clips not yet top-processed.
  int64_t l_lo;  // Clips not yet bottom-processed.
  double b_up = kInf;
  double b_lo = -kInf;
  bool decided = false;  // Confirmed winner or confirmed loser.
  bool winner = false;
};

void ResetCounters(const QueryTables& tables) {
  for (const storage::ScoreTableView* t : tables.AllTables()) t->ResetCounter();
}

storage::AccessCounter CollectCounters(const QueryTables& tables) {
  storage::AccessCounter total;
  for (const storage::ScoreTableView* t : tables.AllTables()) {
    total += t->counter();
  }
  return total;
}

}  // namespace

Rvaq::Rvaq(const QueryTables* tables, const ScoringModel* scoring,
           RvaqOptions options)
    : tables_(tables), scoring_(scoring), options_(options) {
  VAQ_CHECK(tables != nullptr);
  VAQ_CHECK(scoring != nullptr);
  VAQ_CHECK_GE(options.k, 1);
}

TopKResult Rvaq::Run() const {
  VAQ_TRACE_SPAN("rvaq/run");
  const auto start = std::chrono::steady_clock::now();
  ResetCounters(*tables_);

  TopKResult result;
  {
    VAQ_TRACE_SPAN("rvaq/compute_pq");
    result.pq = tables_->ComputePq();
  }

  // Cascade pre-filter: drop candidate sequences with no surviving clip.
  // Retained intervals keep their FULL extent — the proxy only decides
  // which sequences participate, never which of their clips score — so
  // every retained sequence's bounds and exact score are byte-identical
  // to an unfiltered run.
  IntervalSet candidates = result.pq;
  if (options_.clip_filter != nullptr) {
    std::vector<Interval> retained;
    const std::vector<Interval>& surviving =
        options_.clip_filter->intervals();
    for (const Interval& iv : result.pq.intervals()) {
      bool keep = false;
      for (const Interval& f : surviving) {
        if (f.lo > iv.hi) break;
        if (iv.Overlaps(f)) {
          keep = true;
          break;
        }
      }
      if (keep) {
        retained.push_back(iv);
      } else {
        ++result.candidates_pruned;
      }
    }
    candidates = IntervalSet::FromIntervals(std::move(retained));
    obs::MetricRegistry::Global()
        .GetCounter("vaq_cascade_candidates_pruned_total")
        ->Increment(result.candidates_pruned);
  }

  // Candidate sequence states.
  std::vector<SeqState> seqs;
  seqs.reserve(candidates.size());
  for (const Interval& iv : candidates.intervals()) {
    SeqState s;
    s.clips = iv;
    s.s_up = scoring_->Identity();
    s.s_lo = scoring_->Identity();
    s.l_up = iv.length();
    s.l_lo = iv.length();
    seqs.push_back(s);
  }

  // Skip set: clips outside P_q never participate (§4.3, first bullet).
  // Clips of pruned candidate sequences stay skipped too.
  std::vector<bool> skip(static_cast<size_t>(tables_->num_clips), true);
  for (const Interval& iv : candidates.intervals()) {
    for (ClipIndex c = iv.lo; c <= iv.hi; ++c) {
      skip[static_cast<size_t>(c)] = false;
    }
  }

  ClipScoreSource source(tables_, scoring_);
  const int64_t k = options_.k;

  auto finalize = [&](std::vector<SeqState*> ranked) {
    VAQ_TRACE_SPAN("rvaq/finalize");
    for (SeqState* s : ranked) {
      RankedSequence out;
      out.clips = s->clips;
      out.lower_bound = s->b_lo == -kInf ? scoring_->Identity() : s->b_lo;
      out.upper_bound = s->b_up;
      if (options_.exact_scores) {
        // Cost-based choice: a fresh range scan per table costs one seek
        // each, while completing cached clips costs one random access per
        // missing entry. The bound loop usually leaves winners mostly
        // cached, so the random path wins at large K.
        int64_t missing = 0;
        for (ClipIndex c = s->clips.lo; c <= s->clips.hi; ++c) {
          missing += source.MissingEntries(c);
        }
        if (missing < tables_->num_tables()) {
          double exact = scoring_->Identity();
          for (ClipIndex c = s->clips.lo; c <= s->clips.hi; ++c) {
            exact = scoring_->Combine(exact, source.Score(c));
          }
          out.exact_score = exact;
        } else {
          out.exact_score =
              ExactSequenceScore(*tables_, *scoring_, s->clips);
        }
        out.has_exact = true;
      }
      result.top.push_back(out);
    }
    if (options_.exact_scores) {
      std::stable_sort(result.top.begin(), result.top.end(),
                       [](const RankedSequence& a, const RankedSequence& b) {
                         return a.exact_score > b.exact_score;
                       });
    }
    result.accesses = CollectCounters(*tables_);
    storage::MirrorAccessCounter(result.accesses, "rvaq");
    obs::MetricRegistry::Global()
        .GetCounter("vaq_rvaq_iterations_total")
        ->Increment(result.iterations);
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  };

  // Fewer candidates than K: everything is a winner.
  if (static_cast<int64_t>(seqs.size()) <= k) {
    std::vector<SeqState*> all;
    for (SeqState& s : seqs) all.push_back(&s);
    finalize(std::move(all));
    return result;
  }

  // Marks every clip of a decided sequence skippable (§4.3).
  auto skip_sequence = [&](const SeqState& s) {
    if (!options_.use_skip) return;
    for (ClipIndex c = s.clips.lo; c <= s.clips.hi; ++c) {
      skip[static_cast<size_t>(c)] = true;
    }
  };

  TbClipIterator iterator(tables_, &source, &skip);
  TbClipIterator::Entry top;
  TbClipIterator::Entry bottom;
  VAQ_TRACE_SPAN("rvaq/bound_loop");
  while (iterator.Next(&top, &bottom)) {
    ++result.iterations;
    // Fold the new extreme clips into their sequences' partial scores.
    for (SeqState& s : seqs) {
      if (top.valid() && s.clips.Contains(top.clip)) {
        s.s_up = scoring_->Combine(s.s_up, top.score);
        --s.l_up;
        if (options_.two_sided_bounds) {
          s.s_lo = scoring_->Combine(s.s_lo, top.score);
          --s.l_lo;
        }
      }
      if (bottom.valid() && bottom.clip != top.clip &&
          s.clips.Contains(bottom.clip)) {
        s.s_lo = scoring_->Combine(s.s_lo, bottom.score);
        --s.l_lo;
        if (options_.two_sided_bounds) {
          s.s_up = scoring_->Combine(s.s_up, bottom.score);
          --s.l_up;
        }
      }
    }
    // Refresh bounds (Eqs. 13-14). Decided sequences keep frozen bounds.
    for (SeqState& s : seqs) {
      if (s.decided) continue;
      if (top.valid()) {
        s.b_up = scoring_->Combine(s.s_up,
                                   scoring_->Repeat(top.score, s.l_up));
      }
      if (bottom.valid()) {
        s.b_lo = scoring_->Combine(s.s_lo,
                                   scoring_->Repeat(bottom.score, s.l_lo));
      }
    }

    // B_lo^K: the K-th highest lower bound.
    std::vector<double> lows;
    lows.reserve(seqs.size());
    for (const SeqState& s : seqs) lows.push_back(s.b_lo);
    std::nth_element(lows.begin(), lows.begin() + (k - 1), lows.end(),
                     std::greater<double>());
    const double b_lo_k = lows[static_cast<size_t>(k - 1)];

    // Membership of the current top-K-by-lower-bound set, with ties broken
    // deterministically by index.
    std::vector<size_t> order(seqs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return seqs[a].b_lo > seqs[b].b_lo;
    });
    std::vector<bool> in_topk(seqs.size(), false);
    for (int64_t i = 0; i < k; ++i) in_topk[order[static_cast<size_t>(i)]] =
        true;

    // B_up^¬K: the highest upper bound outside the top-K set.
    double b_up_not_k = -kInf;
    for (size_t i = 0; i < seqs.size(); ++i) {
      if (!in_topk[i]) b_up_not_k = std::max(b_up_not_k, seqs[i].b_up);
    }

    // Decide sequences (dynamic skip, §4.3).
    for (size_t i = 0; i < seqs.size(); ++i) {
      SeqState& s = seqs[i];
      if (s.decided) continue;
      if (s.b_up < b_lo_k) {
        s.decided = true;
        s.winner = false;
        skip_sequence(s);
      } else if (in_topk[i] && s.b_lo > b_up_not_k) {
        s.decided = true;
        s.winner = true;
        skip_sequence(s);
      }
    }

    // Stopping condition (Eq. 15).
    if (b_lo_k >= b_up_not_k) {
      std::vector<SeqState*> ranked;
      for (int64_t i = 0; i < k; ++i) {
        ranked.push_back(&seqs[order[static_cast<size_t>(i)]]);
      }
      finalize(std::move(ranked));
      return result;
    }
  }

  // Iterator exhausted without triggering Eq. 15 (possible when skipping
  // is disabled and ties persist): every clip has been processed, so the
  // lower bounds are exact.
  std::vector<size_t> order(seqs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return seqs[a].b_lo > seqs[b].b_lo;
  });
  std::vector<SeqState*> ranked;
  for (int64_t i = 0; i < k && i < static_cast<int64_t>(order.size()); ++i) {
    ranked.push_back(&seqs[order[static_cast<size_t>(i)]]);
  }
  finalize(std::move(ranked));
  return result;
}

}  // namespace offline
}  // namespace vaq
