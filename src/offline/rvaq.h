// Algorithm RVAQ (§4.3): progressive top-K over result sequences.
//
// RVAQ computes P_q from the materialized individual sequences (Eq. 12),
// then repeatedly draws the highest- and lowest-scoring unprocessed clips
// from the TBClip iterator, refining an upper bound (Eq. 13) and a lower
// bound (Eq. 14) for every candidate sequence. Two bound summaries — the
// K-th highest lower bound B_lo^K and the highest upper bound among the
// other sequences B_up^¬K — drive early termination (Eq. 15) and the
// dynamic skip set: a sequence whose upper bound sinks below B_lo^K can
// never enter the top-K, and one whose lower bound exceeds B_up^¬K is
// certainly in it; either way its remaining clips stop being accessed.
#ifndef VAQ_OFFLINE_RVAQ_H_
#define VAQ_OFFLINE_RVAQ_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "offline/query_view.h"
#include "storage/access_counter.h"

namespace vaq {
namespace offline {

// Resolves, per video, the set of clips an approximate pre-filter (the
// cascade proxy tier, src/cascade/) could not rule out. nullptr means
// the video is unconstrained (scan everything); an EMPTY set means the
// whole video is pruned before any table is bound. Implementations must
// be usable concurrently from multiple shards.
class ClipFilterProvider {
 public:
  virtual ~ClipFilterProvider() = default;
  virtual const IntervalSet* SurvivingClips(
      const std::string& video) const = 0;
};

struct RvaqOptions {
  int64_t k = 5;
  // The dynamic skip mechanism of §4.3; disabling it yields the paper's
  // RVAQ-noSkip baseline (only non-P_q clips are skipped).
  bool use_skip = true;
  // Finalize exact scores (and exact ordering) of the K winners by direct
  // random accesses after the bound loop terminates. When false, winners
  // are ordered by their lower bounds (the paper's cheapest mode, which
  // also skips clips of confirmed winners).
  bool exact_scores = true;
  // When true (default), bound refinement uses exact scores from *both*
  // cursors for both bounds: a clip processed as top also tightens its
  // sequence's lower bound and vice versa. This is required for the §4.3
  // claim that the bounds "converge to the exact values" as the iterator
  // drains — with strictly one-sided accounting a clip drained from the
  // top never leaves the other bound's unprocessed mass and ties can be
  // mis-ranked at exhaustion. The literal one-sided bookkeeping of the
  // paper's notation is kept as an ablation (set to false).
  bool two_sided_bounds = true;
  // Cascade pre-filter hooks (both nullptr on the exact path, which
  // keeps recall-1.0 execution byte-identical to a build without the
  // cascade subsystem):
  //  * `clip_filter` constrains THIS video's run: candidate sequences
  //    with no surviving clip are dropped from the bound loop before
  //    any access is charged. Retained sequences keep their full
  //    extent, so their scores and bounds are byte-identical to an
  //    unfiltered run.
  //  * `prefilter` is the repository/cluster-scope resolver consulted
  //    by Repository::TopK and cluster::Node per video; it is how one
  //    plan ships across shards (each node resolves locally).
  const IntervalSet* clip_filter = nullptr;
  const ClipFilterProvider* prefilter = nullptr;
};

// One ranked result sequence.
struct RankedSequence {
  Interval clips;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  // Exact score when RvaqOptions::exact_scores (or the baseline computed
  // it); otherwise NaN.
  double exact_score = 0.0;
  bool has_exact = false;
};

// Outcome of a top-K run (RVAQ or a baseline).
struct TopKResult {
  std::vector<RankedSequence> top;  // Best first.
  IntervalSet pq;                   // All candidate sequences.
  storage::AccessCounter accesses;  // Table accesses charged to the run.
  int64_t iterations = 0;           // TBClip invocations (RVAQ only).
  // Candidate sequences dropped by RvaqOptions::clip_filter before the
  // bound loop (always 0 on the exact path).
  int64_t candidates_pruned = 0;
  double wall_ms = 0.0;
};

class Rvaq {
 public:
  // `tables` and `scoring` must outlive the object.
  Rvaq(const QueryTables* tables, const ScoringModel* scoring,
       RvaqOptions options);

  // Runs the full algorithm. Resets the bound tables' access counters at
  // entry so `accesses` reflects this run only.
  TopKResult Run() const;

 private:
  const QueryTables* tables_;
  const ScoringModel* scoring_;
  RvaqOptions options_;
};

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_RVAQ_H_
