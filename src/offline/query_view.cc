#include "offline/query_view.h"

#include "common/logging.h"

namespace vaq {
namespace offline {
namespace {

StatusOr<const storage::TypeIndex*> FindObjectEntry(
    const storage::VideoIndex& index, ObjectTypeId type,
    const Vocabulary& vocab) {
  const storage::TypeIndex* entry = index.FindObject(type);
  if (entry == nullptr) {
    const std::string name = type >= 0 && type < vocab.num_object_types()
                                 ? vocab.ObjectTypeName(type)
                                 : "#" + std::to_string(type);
    return Status::NotFound("object type not ingested: " + name);
  }
  return entry;
}

StatusOr<const storage::TypeIndex*> FindActionEntry(
    const storage::VideoIndex& index, ActionTypeId type,
    const Vocabulary& vocab) {
  const storage::TypeIndex* entry = index.FindAction(type);
  if (entry == nullptr) {
    const std::string name = type >= 0 && type < vocab.num_action_types()
                                 ? vocab.ActionTypeName(type)
                                 : "#" + std::to_string(type);
    return Status::NotFound("action type not ingested: " + name);
  }
  return entry;
}

}  // namespace

StatusOr<QueryTables> QueryTables::Bind(const storage::VideoIndex& index,
                                        const QuerySpec& query,
                                        const Vocabulary& vocab) {
  QueryTables out;
  out.num_clips = index.num_clips;
  for (ObjectTypeId type : query.objects) {
    VAQ_ASSIGN_OR_RETURN(const storage::TypeIndex* entry,
                         FindObjectEntry(index, type, vocab));
    out.schema.clauses.push_back({static_cast<int>(out.tables.size())});
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  out.schema.num_objects = static_cast<int>(out.tables.size());
  if (query.has_action()) {
    VAQ_ASSIGN_OR_RETURN(const storage::TypeIndex* entry,
                         FindActionEntry(index, query.action, vocab));
    out.schema.has_action = true;
    out.schema.clauses.push_back({static_cast<int>(out.tables.size())});
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  if (out.num_tables() == 0) {
    return Status::InvalidArgument("query touches no tables");
  }
  return out;
}

StatusOr<QueryTables> QueryTables::BindCnf(const storage::VideoIndex& index,
                                           const CnfQuery& query,
                                           const Vocabulary& vocab) {
  QueryTables out;
  out.num_clips = index.num_clips;
  const std::vector<Literal> literals = query.DistinctLiterals();
  for (const Literal& literal : literals) {
    const storage::TypeIndex* entry = nullptr;
    if (literal.kind == Literal::Kind::kObject) {
      VAQ_ASSIGN_OR_RETURN(entry, FindObjectEntry(index, literal.type, vocab));
    } else {
      VAQ_ASSIGN_OR_RETURN(entry, FindActionEntry(index, literal.type, vocab));
    }
    out.tables.push_back(&entry->table);
    out.sequences.push_back(&entry->sequences);
  }
  for (const Clause& clause : query.clauses) {
    std::vector<int> indices;
    for (const Literal& literal : clause.literals) {
      for (size_t i = 0; i < literals.size(); ++i) {
        if (literals[i] == literal) {
          indices.push_back(static_cast<int>(i));
          break;
        }
      }
    }
    out.schema.clauses.push_back(std::move(indices));
  }
  if (out.num_tables() == 0) {
    return Status::InvalidArgument("query touches no tables");
  }
  return out;
}

IntervalSet QueryTables::ComputePq() const {
  IntervalSet pq = IntervalSet::FromIntervals({Interval(0, num_clips - 1)});
  for (const std::vector<int>& clause : schema.clauses) {
    // A clause is satisfied wherever any of its literals' individual
    // sequences cover the clip (footnote 4 of the paper).
    IntervalSet clause_cover;
    for (int table : clause) {
      clause_cover = clause_cover.Union(*sequences[static_cast<size_t>(table)]);
    }
    pq = pq.Intersect(clause_cover);
  }
  return pq;
}

double ExactSequenceScore(const QueryTables& tables,
                          const ScoringModel& scoring, const Interval& seq) {
  const std::vector<const storage::ScoreTableView*>& all = tables.AllTables();
  const size_t len = static_cast<size_t>(seq.length());
  std::vector<std::vector<double>> columns(all.size());
  for (size_t t = 0; t < all.size(); ++t) {
    columns[t].reserve(len);
    all[t]->RangeScores(seq.lo, seq.hi, &columns[t]);
  }
  std::vector<double> values(all.size());
  double total = scoring.Identity();
  for (size_t i = 0; i < len; ++i) {
    for (size_t t = 0; t < all.size(); ++t) values[t] = columns[t][i];
    total = scoring.Combine(total, scoring.ClipScore(values, tables.schema));
  }
  return total;
}

ClipScoreSource::ClipScoreSource(const QueryTables* tables,
                                 const ScoringModel* scoring)
    : tables_(tables), scoring_(scoring) {
  VAQ_CHECK(tables != nullptr);
  VAQ_CHECK(scoring != nullptr);
  const size_t n = static_cast<size_t>(tables_->num_clips);
  const size_t t = static_cast<size_t>(tables_->num_tables());
  entry_value_.assign(t, std::vector<double>(n, 0.0));
  entry_known_.assign(t, std::vector<bool>(n, false));
  full_score_.assign(n, 0.0);
  full_known_.assign(n, false);
}

void ClipScoreSource::NoteKnownEntry(int table_idx, ClipIndex clip,
                                     double score) {
  entry_value_[static_cast<size_t>(table_idx)][static_cast<size_t>(clip)] =
      score;
  entry_known_[static_cast<size_t>(table_idx)][static_cast<size_t>(clip)] =
      true;
}

int64_t ClipScoreSource::MissingEntries(ClipIndex clip) const {
  const size_t c = static_cast<size_t>(clip);
  if (full_known_[c]) return 0;
  int64_t missing = 0;
  for (const auto& known : entry_known_) {
    if (!known[c]) ++missing;
  }
  return missing;
}

double ClipScoreSource::BoundWith(ClipIndex clip,
                                  const std::vector<double>& fill) const {
  const size_t c = static_cast<size_t>(clip);
  const size_t num_tables = entry_value_.size();
  VAQ_CHECK_EQ(fill.size(), num_tables);
  std::vector<double> values(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    values[t] = entry_known_[t][c] ? entry_value_[t][c] : fill[t];
  }
  return scoring_->ClipScore(values, tables_->schema);
}

double ClipScoreSource::Score(ClipIndex clip) {
  const size_t c = static_cast<size_t>(clip);
  if (full_known_[c]) return full_score_[c];
  const std::vector<const storage::ScoreTableView*>& all = tables_->AllTables();
  std::vector<double> values(all.size());
  for (size_t t = 0; t < all.size(); ++t) {
    if (entry_known_[t][c]) {
      values[t] = entry_value_[t][c];
    } else {
      values[t] = all[t]->RandomScore(clip);  // Counted random access.
      entry_value_[t][c] = values[t];
      entry_known_[t][c] = true;
    }
  }
  const double score = scoring_->ClipScore(values, tables_->schema);
  full_score_[c] = score;
  full_known_[c] = true;
  return score;
}

}  // namespace offline
}  // namespace vaq
