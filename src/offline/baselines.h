// Offline baselines of §5.1 ("Algorithms Compared: Offline Case").
//
//  * FA — Fagin's Algorithm adapted to sequences: parallel sorted access
//    over all tables; clips outside P_q are disregarded as produced; the
//    run stops only once the score of every clip in every candidate
//    sequence is known (each sequence's total score must be produced), and
//    the K best sequences are returned.
//  * Pq-Traverse — accesses exactly the clips inside P_q's sequences by
//    random access, computes every sequence score, and sorts. Cost is
//    constant in K.
//
// RVAQ-noSkip is RVAQ with RvaqOptions::use_skip = false.
#ifndef VAQ_OFFLINE_BASELINES_H_
#define VAQ_OFFLINE_BASELINES_H_

#include "offline/query_view.h"
#include "offline/rvaq.h"

namespace vaq {
namespace offline {

// Fagin's Algorithm baseline.
TopKResult FaTopK(const QueryTables& tables, const ScoringModel& scoring,
                  int64_t k);

// Full-traversal baseline.
TopKResult PqTraverse(const QueryTables& tables, const ScoringModel& scoring,
                      int64_t k);

}  // namespace offline
}  // namespace vaq

#endif  // VAQ_OFFLINE_BASELINES_H_
