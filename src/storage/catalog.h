// Persistent video repository metadata.
//
// The ingestion phase (§4.2) runs once per video and materializes, for
// every object and action type the deployed models support: (a) the clip
// score table and (b) the type's individual sequences P_{o_i} / P_{a_j}.
// `VideoIndex` is the in-memory form; `Catalog` persists indexes under a
// root directory, one subdirectory per video, so that ad-hoc queries at any
// later time never re-run model inference.
#ifndef VAQ_STORAGE_CATALOG_H_
#define VAQ_STORAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "storage/score_table.h"

namespace vaq {
namespace storage {

// Ingested metadata of one type (object or action) in one video.
struct TypeIndex {
  int32_t type_id = -1;
  std::string type_name;
  ScoreTable table;
  // Individual sequences: maximal runs of clips where the type's indicator
  // fired (§4.2), at clip granularity.
  IntervalSet sequences;
};

// All ingested metadata of one video.
struct VideoIndex {
  int64_t video_id = 0;
  int64_t num_clips = 0;
  std::vector<TypeIndex> objects;
  std::vector<TypeIndex> actions;

  const TypeIndex* FindObject(int32_t type_id) const;
  const TypeIndex* FindAction(int32_t type_id) const;
  const TypeIndex* FindObjectByName(const std::string& name) const;
  const TypeIndex* FindActionByName(const std::string& name) const;

  // Sum of access counters across all tables.
  AccessCounter TotalAccesses() const;
  void ResetAccessCounters() const;
};

// A directory of persisted VideoIndexes keyed by name.
class Catalog {
 public:
  // `root` is created on first Save if missing.
  explicit Catalog(std::string root);

  Status Save(const std::string& name, const VideoIndex& index) const;
  StatusOr<VideoIndex> Load(const std::string& name) const;
  // Removes a video and its table files (§4.2: videos can be added or
  // deleted from the repository by manipulating the per-video metadata).
  Status Delete(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> ListVideos() const;

  const std::string& root() const { return root_; }

 private:
  std::string root_;
};

}  // namespace storage
}  // namespace vaq

#endif  // VAQ_STORAGE_CATALOG_H_
