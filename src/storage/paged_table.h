// Disk-resident clip score tables behind a page cache.
//
// The in-memory ScoreTable is fine for experiments, but a repository of
// long videos is a secondary-storage workload (that is why the paper
// counts random disk accesses). `PagedScoreTable` serves the identical
// ScoreTableView interface directly from a file:
//
//   header page | score-ordered rows (clip, score) | by-clip scores
//
// with fixed-size pages fetched on demand through a shared LRU
// `PageCache` (a miniature buffer pool). Logical accesses are counted in
// the usual AccessCounter; physical I/O shows up as page fetches vs cache
// hits, letting benches and tests demonstrate locality: sorted scans and
// range scans hit mostly-cached pages, scattered random lookups miss.
//
// Integrity: the file ends with a trailer of per-page FNV-1a checksums
// (4096-byte integrity pages, data zero-padded to a page boundary).
// `PagedScoreTable::Open` verifies every page against the trailer and
// returns kCorruption on any mismatch, so bit rot or torn writes are
// caught before a query reads a single row. `PageCache` optionally routes
// physical reads through a fault::FaultPlan (bounded retries, then
// kUnavailable) so storage-fault handling can be tested deterministically.
#ifndef VAQ_STORAGE_PAGED_TABLE_H_
#define VAQ_STORAGE_PAGED_TABLE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "fault/fault_plan.h"
#include "storage/score_table.h"

namespace vaq {
namespace storage {

// Fixed-capacity LRU cache of file pages, shareable across tables *and*
// across threads: the LRU structure is guarded by a mutex, the statistics
// are atomics, and pages are handed out as shared_ptrs so a page evicted
// by one thread stays alive for readers that already hold it. One cache
// can therefore back every concurrently-served query (src/serve/); the
// table views on top of it remain single-threaded.
class PageCache {
 public:
  // `capacity_pages` > 0; `page_size` bytes per page (power of two not
  // required).
  PageCache(int64_t capacity_pages, int64_t page_size);

  int64_t page_size() const { return page_size_; }
  int64_t capacity_pages() const { return capacity_pages_; }

  // Returns the page's bytes, reading through `fd` at
  // page_index * page_size on a miss. The returned page is immutable and
  // outlives any eviction for as long as the caller holds it.
  StatusOr<std::shared_ptr<const std::vector<char>>> Get(int fd,
                                                         int64_t page_index);

  int64_t fetches() const { return fetches_.load(std::memory_order_relaxed); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  void ResetStats() {
    fetches_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
  }
  // Drops every cached page (stats are kept).
  void Clear();

  // Fault injection (see src/fault/): when a plan with a nonzero
  // page_error_rate is installed, each cache miss's physical read may
  // fail per the plan; a failed read is retried (fresh attempt nonce) up
  // to two times before Get gives up with kUnavailable. Null (default)
  // disables injection. Not owned; must outlive the cache or be unset.
  // Install before sharing the cache across threads.
  void set_fault_plan(const fault::FaultPlan* plan) { fault_plan_ = plan; }
  int64_t injected_read_faults() const {
    return injected_read_faults_.load(std::memory_order_relaxed);
  }
  int64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    int fd;
    int64_t page;
    bool operator==(const Key& other) const {
      return fd == other.fd && page == other.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return std::hash<int64_t>()(key.page * 1000003 + key.fd);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::vector<char>> bytes;
  };

  int64_t capacity_pages_;
  int64_t page_size_;
  std::mutex mu_;         // Guards lru_ and index_.
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::atomic<int64_t> fetches_{0};
  std::atomic<int64_t> hits_{0};
  const fault::FaultPlan* fault_plan_ = nullptr;
  std::atomic<int64_t> injected_read_faults_{0};
  std::atomic<int64_t> read_retries_{0};
};

// Converts an in-memory table to the paged on-disk format.
Status WritePagedTable(const ScoreTable& table, const std::string& path);

// A read-only paged table. Not thread-safe (like the rest of the storage
// layer); one instance per query thread.
class PagedScoreTable : public ScoreTableView {
 public:
  // `cache` must outlive the table.
  static StatusOr<std::unique_ptr<PagedScoreTable>> Open(
      const std::string& path, PageCache* cache);
  ~PagedScoreTable() override;

  PagedScoreTable(const PagedScoreTable&) = delete;
  PagedScoreTable& operator=(const PagedScoreTable&) = delete;

  int64_t num_rows() const override { return num_rows_; }
  ScoreRow SortedRow(int64_t rank) const override;
  ScoreRow ReverseRow(int64_t rank) const override;
  double RandomScore(ClipIndex cid) const override;
  void RangeScores(ClipIndex lo, ClipIndex hi,
                   std::vector<double>* out) const override;
  const AccessCounter& counter() const override { return counter_; }
  void ResetCounter() const override { counter_.Reset(); }

 private:
  PagedScoreTable(int fd, int64_t num_rows, PageCache* cache);

  // Reads `size` bytes at `offset` via the page cache.
  void ReadAt(int64_t offset, void* out, int64_t size) const;

  int fd_;
  int64_t num_rows_;
  PageCache* cache_;
  mutable AccessCounter counter_;
};

}  // namespace storage
}  // namespace vaq

#endif  // VAQ_STORAGE_PAGED_TABLE_H_
