// Clip score tables (§4.2 of the paper).
//
// During ingestion, every object type o_i and action type a_j gets a table
// table_{o_i} : {cid, Score} holding one row per clip, ordered by Score
// descending. Query processing touches tables through three counted access
// paths mirroring the top-k literature [Fagin]:
//
//   * sorted access   — read the row at a given rank from the top;
//   * reverse access  — read the row at a given rank from the bottom
//                       (TBClip's bottom cursor, Algorithm 5 step 3);
//   * random access   — look up the score of a given clip id.
//
// Tables serialize to a simple versioned binary file so a video repository
// survives process restarts (the ingestion phase runs once per video).
#ifndef VAQ_STORAGE_SCORE_TABLE_H_
#define VAQ_STORAGE_SCORE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/access_counter.h"
#include "video/layout.h"

namespace vaq {
namespace storage {

// One row of a clip score table.
struct ScoreRow {
  ClipIndex clip = 0;
  double score = 0.0;
};

// Access interface of a clip score table: the three counted paths query
// processing uses, regardless of whether the table lives in memory
// (ScoreTable) or on disk behind a page cache (PagedScoreTable).
class ScoreTableView {
 public:
  virtual ~ScoreTableView() = default;

  virtual int64_t num_rows() const = 0;
  // Sorted access: the row with the `rank`-th highest score (0-based).
  virtual ScoreRow SortedRow(int64_t rank) const = 0;
  // Reverse access: the row with the `rank`-th lowest score (0-based).
  virtual ScoreRow ReverseRow(int64_t rank) const = 0;
  // Random access: the score of clip `cid`.
  virtual double RandomScore(ClipIndex cid) const = 0;
  // Range scan over the contiguous clips [lo, hi] (one seek + rows).
  virtual void RangeScores(ClipIndex lo, ClipIndex hi,
                           std::vector<double>* out) const = 0;
  virtual const AccessCounter& counter() const = 0;
  virtual void ResetCounter() const = 0;
};

class ScoreTable : public ScoreTableView {
 public:
  using Row = ScoreRow;

  ScoreTable() = default;

  // Builds a table from one row per clip. Clip ids must be exactly
  // 0..rows.size()-1 (every clip of the video has a score; §4.2 stores a
  // row even for zero scores so sorted access can reach every clip).
  static StatusOr<ScoreTable> Build(std::vector<Row> rows);

  int64_t num_rows() const override {
    return static_cast<int64_t>(by_rank_.size());
  }
  Row SortedRow(int64_t rank) const override;
  Row ReverseRow(int64_t rank) const override;
  double RandomScore(ClipIndex cid) const override;
  // Contiguous clip ids are physically adjacent in the by-clip projection
  // of the table, so a range costs one seek plus sequential rows.
  void RangeScores(ClipIndex lo, ClipIndex hi, std::vector<double>* out)
      const override;

  // Uncounted internal lookups (for building ground truth in tests or
  // result verification; not part of the costed query path).
  double PeekScore(ClipIndex cid) const;

  const AccessCounter& counter() const override { return counter_; }
  void ResetCounter() const override { counter_.Reset(); }

  Status WriteTo(const std::string& path) const;
  static StatusOr<ScoreTable> ReadFrom(const std::string& path);

 private:
  std::vector<Row> by_rank_;      // Sorted by score descending.
  std::vector<double> by_clip_;   // Dense score array indexed by clip id.
  mutable AccessCounter counter_;
};

}  // namespace storage
}  // namespace vaq

#endif  // VAQ_STORAGE_SCORE_TABLE_H_
