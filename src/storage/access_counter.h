// Access accounting for clip score tables.
//
// The paper's offline evaluation (§5.3, Tables 6-8) reports the *number of
// random accesses to secondary storage* as its primary platform-independent
// cost metric. Every ScoreTable operation is classified as a sorted access
// (next row in score order), a reverse access (next row from the bottom) or
// a random access (score lookup by clip id) and counted here.
//
// Not thread-safe: a counter belongs to the query thread that owns the
// table view it accounts for. Concurrent runtimes (src/serve/) keep one
// AccessCounter per worker and combine them with Merge() once the workers
// have drained — counters are never shared hot.
#ifndef VAQ_STORAGE_ACCESS_COUNTER_H_
#define VAQ_STORAGE_ACCESS_COUNTER_H_

#include <cstdint>
#include <string>

namespace vaq {
namespace storage {

struct AccessCounter {
  int64_t sorted_accesses = 0;   // Rows read in score order (sequential).
  int64_t reverse_accesses = 0;  // Rows read from the bottom (sequential).
  int64_t random_accesses = 0;   // Single-clip score lookups (seeks).
  int64_t range_scans = 0;       // Contiguous clip-range reads (one seek).
  int64_t range_rows = 0;        // Rows delivered by range scans.

  int64_t total() const {
    return sorted_accesses + reverse_accesses + random_accesses +
           range_rows;
  }
  // Seek-like operations: what dominates on disk (the paper's "number of
  // random disk accesses").
  int64_t seeks() const { return random_accesses + range_scans; }
  // Sequentially streamed rows.
  int64_t sequential_rows() const {
    return sorted_accesses + reverse_accesses + range_rows;
  }
  void Reset() { *this = AccessCounter(); }

  // Modeled disk time: every seek costs `seek_ms`, every sequentially
  // streamed row costs `row_ms`. Used by the benchmark harness to put the
  // four offline algorithms on the paper's runtime scale.
  double ModeledMs(double seek_ms, double row_ms) const {
    return static_cast<double>(seeks()) * seek_ms +
           static_cast<double>(sequential_rows()) * row_ms;
  }

  AccessCounter& operator+=(const AccessCounter& other) {
    sorted_accesses += other.sorted_accesses;
    reverse_accesses += other.reverse_accesses;
    random_accesses += other.random_accesses;
    range_scans += other.range_scans;
    range_rows += other.range_rows;
    return *this;
  }

  // Merge-at-drain spelling of operator+= for worker-local accumulators:
  // N counters filled on N threads and merged on one thread afterwards
  // total exactly what a single-thread run would have counted.
  AccessCounter& Merge(const AccessCounter& other) { return *this += other; }

  std::string ToString() const {
    return "{sorted=" + std::to_string(sorted_accesses) +
           ", reverse=" + std::to_string(reverse_accesses) +
           ", random=" + std::to_string(random_accesses) +
           ", range_scans=" + std::to_string(range_scans) +
           ", range_rows=" + std::to_string(range_rows) + "}";
  }
};

}  // namespace storage
}  // namespace vaq

#endif  // VAQ_STORAGE_ACCESS_COUNTER_H_
