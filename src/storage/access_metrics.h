// Mirrors an AccessCounter into the process-wide metric registry.
//
// The offline engines keep their paper-facing access accounting in
// `AccessCounter` (one per table, summed per run); this helper folds a
// finished run's totals into the labeled family
//
//   vaq_storage_accesses_total{engine="rvaq",kind="random"}
//
// so the Prometheus/JSON exporters see the same numbers Tables 6-8
// report. All five kinds are registered even when zero, keeping the
// snapshot shape independent of the data.
#ifndef VAQ_STORAGE_ACCESS_METRICS_H_
#define VAQ_STORAGE_ACCESS_METRICS_H_

#include <string>

#include "obs/metrics.h"
#include "storage/access_counter.h"

namespace vaq {
namespace storage {

inline void MirrorAccessCounter(const AccessCounter& counter,
                                const std::string& engine) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const auto add = [&](const char* kind, int64_t n) {
    registry
        .GetCounter("vaq_storage_accesses_total",
                    {{"engine", engine}, {"kind", kind}})
        ->Increment(n);
  };
  add("sorted", counter.sorted_accesses);
  add("reverse", counter.reverse_accesses);
  add("random", counter.random_accesses);
  add("range_scan", counter.range_scans);
  add("range_row", counter.range_rows);
}

}  // namespace storage
}  // namespace vaq

#endif  // VAQ_STORAGE_ACCESS_METRICS_H_
