#include "storage/score_table.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace vaq {
namespace storage {
namespace {

constexpr uint64_t kTableMagic = 0x5641515f54424c31ULL;  // "VAQ_TBL1"

}  // namespace

StatusOr<ScoreTable> ScoreTable::Build(std::vector<Row> rows) {
  ScoreTable table;
  table.by_clip_.assign(rows.size(), 0.0);
  std::vector<bool> seen(rows.size(), false);
  for (const Row& row : rows) {
    if (row.clip < 0 || row.clip >= static_cast<int64_t>(rows.size())) {
      return Status::InvalidArgument("clip id out of range: " +
                                     std::to_string(row.clip));
    }
    if (seen[static_cast<size_t>(row.clip)]) {
      return Status::InvalidArgument("duplicate clip id: " +
                                     std::to_string(row.clip));
    }
    seen[static_cast<size_t>(row.clip)] = true;
    table.by_clip_[static_cast<size_t>(row.clip)] = row.score;
  }
  // Stable order among ties: lower clip id first, to keep runs
  // deterministic.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.clip < b.clip;
  });
  table.by_rank_ = std::move(rows);
  return table;
}

ScoreTable::Row ScoreTable::SortedRow(int64_t rank) const {
  VAQ_CHECK_GE(rank, 0);
  VAQ_CHECK_LT(rank, num_rows());
  ++counter_.sorted_accesses;
  return by_rank_[static_cast<size_t>(rank)];
}

ScoreTable::Row ScoreTable::ReverseRow(int64_t rank) const {
  VAQ_CHECK_GE(rank, 0);
  VAQ_CHECK_LT(rank, num_rows());
  ++counter_.reverse_accesses;
  return by_rank_[static_cast<size_t>(num_rows() - 1 - rank)];
}

double ScoreTable::RandomScore(ClipIndex cid) const {
  VAQ_CHECK_GE(cid, 0);
  VAQ_CHECK_LT(cid, num_rows());
  ++counter_.random_accesses;
  return by_clip_[static_cast<size_t>(cid)];
}

void ScoreTable::RangeScores(ClipIndex lo, ClipIndex hi,
                             std::vector<double>* out) const {
  VAQ_CHECK_GE(lo, 0);
  VAQ_CHECK_LE(lo, hi);
  VAQ_CHECK_LT(hi, num_rows());
  ++counter_.range_scans;
  counter_.range_rows += hi - lo + 1;
  for (ClipIndex c = lo; c <= hi; ++c) {
    out->push_back(by_clip_[static_cast<size_t>(c)]);
  }
}

double ScoreTable::PeekScore(ClipIndex cid) const {
  VAQ_CHECK_GE(cid, 0);
  VAQ_CHECK_LT(cid, num_rows());
  return by_clip_[static_cast<size_t>(cid)];
}

Status ScoreTable::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const uint64_t magic = kTableMagic;
  const uint64_t n = static_cast<uint64_t>(num_rows());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Row& row : by_rank_) {
    out.write(reinterpret_cast<const char*>(&row.clip), sizeof(row.clip));
    out.write(reinterpret_cast<const char*>(&row.score), sizeof(row.score));
  }
  if (!out) return Status::IoError("short write: " + path);
  return Status::OK();
}

StatusOr<ScoreTable> ScoreTable::ReadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  uint64_t magic = 0;
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || magic != kTableMagic) {
    return Status::Corruption("bad score table header: " + path);
  }
  std::vector<Row> rows(n);
  for (Row& row : rows) {
    in.read(reinterpret_cast<char*>(&row.clip), sizeof(row.clip));
    in.read(reinterpret_cast<char*>(&row.score), sizeof(row.score));
  }
  if (!in) return Status::Corruption("truncated score table: " + path);
  return Build(std::move(rows));
}

}  // namespace storage
}  // namespace vaq
