#include "storage/catalog.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace vaq {
namespace storage {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kIndexMagic = 0x5641515f49445831ULL;  // "VAQ_IDX1"

void WriteString(std::ofstream& out, const std::string& s) {
  const uint64_t n = s.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(s.data(), static_cast<std::streamsize>(n));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n > (1u << 20)) return false;
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

void WriteIntervalSet(std::ofstream& out, const IntervalSet& set) {
  const uint64_t n = set.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Interval& iv : set.intervals()) {
    out.write(reinterpret_cast<const char*>(&iv.lo), sizeof(iv.lo));
    out.write(reinterpret_cast<const char*>(&iv.hi), sizeof(iv.hi));
  }
}

bool ReadIntervalSet(std::ifstream& in, IntervalSet* set) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return false;
  std::vector<Interval> intervals(n);
  for (Interval& iv : intervals) {
    in.read(reinterpret_cast<char*>(&iv.lo), sizeof(iv.lo));
    in.read(reinterpret_cast<char*>(&iv.hi), sizeof(iv.hi));
  }
  if (!in) return false;
  *set = IntervalSet::FromIntervals(std::move(intervals));
  return true;
}

std::string TableFileName(bool is_action, int32_t type_id) {
  return (is_action ? "act_" : "obj_") + std::to_string(type_id) + ".tbl";
}

}  // namespace

const TypeIndex* VideoIndex::FindObject(int32_t type_id) const {
  for (const TypeIndex& t : objects) {
    if (t.type_id == type_id) return &t;
  }
  return nullptr;
}

const TypeIndex* VideoIndex::FindAction(int32_t type_id) const {
  for (const TypeIndex& t : actions) {
    if (t.type_id == type_id) return &t;
  }
  return nullptr;
}

const TypeIndex* VideoIndex::FindObjectByName(const std::string& name) const {
  for (const TypeIndex& t : objects) {
    if (t.type_name == name) return &t;
  }
  return nullptr;
}

const TypeIndex* VideoIndex::FindActionByName(const std::string& name) const {
  for (const TypeIndex& t : actions) {
    if (t.type_name == name) return &t;
  }
  return nullptr;
}

AccessCounter VideoIndex::TotalAccesses() const {
  AccessCounter total;
  for (const TypeIndex& t : objects) total += t.table.counter();
  for (const TypeIndex& t : actions) total += t.table.counter();
  return total;
}

void VideoIndex::ResetAccessCounters() const {
  for (const TypeIndex& t : objects) t.table.ResetCounter();
  for (const TypeIndex& t : actions) t.table.ResetCounter();
}

Catalog::Catalog(std::string root) : root_(std::move(root)) {}

Status Catalog::Save(const std::string& name, const VideoIndex& index) const {
  std::error_code ec;
  const fs::path dir = fs::path(root_) / name;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir.string());

  std::ofstream out(dir / "index.bin", std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write index.bin in " + dir.string());
  const uint64_t magic = kIndexMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&index.video_id),
            sizeof(index.video_id));
  out.write(reinterpret_cast<const char*>(&index.num_clips),
            sizeof(index.num_clips));
  for (const bool is_action : {false, true}) {
    const auto& types = is_action ? index.actions : index.objects;
    const uint64_t n = types.size();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const TypeIndex& t : types) {
      out.write(reinterpret_cast<const char*>(&t.type_id), sizeof(t.type_id));
      WriteString(out, t.type_name);
      WriteIntervalSet(out, t.sequences);
      VAQ_RETURN_IF_ERROR(
          t.table.WriteTo((dir / TableFileName(is_action, t.type_id))
                              .string()));
    }
  }
  if (!out) return Status::IoError("short write of index.bin");
  return Status::OK();
}

StatusOr<VideoIndex> Catalog::Load(const std::string& name) const {
  const fs::path dir = fs::path(root_) / name;
  std::ifstream in(dir / "index.bin", std::ios::binary);
  if (!in) return Status::NotFound("no index.bin in " + dir.string());
  uint64_t magic = 0;
  VideoIndex index;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&index.video_id), sizeof(index.video_id));
  in.read(reinterpret_cast<char*>(&index.num_clips), sizeof(index.num_clips));
  if (!in || magic != kIndexMagic) {
    return Status::Corruption("bad index header in " + dir.string());
  }
  for (const bool is_action : {false, true}) {
    auto& types = is_action ? index.actions : index.objects;
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in) return Status::Corruption("truncated index in " + dir.string());
    types.resize(n);
    for (TypeIndex& t : types) {
      in.read(reinterpret_cast<char*>(&t.type_id), sizeof(t.type_id));
      if (!ReadString(in, &t.type_name) ||
          !ReadIntervalSet(in, &t.sequences)) {
        return Status::Corruption("truncated index in " + dir.string());
      }
      VAQ_ASSIGN_OR_RETURN(
          t.table, ScoreTable::ReadFrom(
                       (dir / TableFileName(is_action, t.type_id)).string()));
    }
  }
  return index;
}

Status Catalog::Delete(const std::string& name) const {
  const fs::path dir = fs::path(root_) / name;
  if (!fs::exists(dir / "index.bin")) {
    return Status::NotFound("no ingested video named '" + name + "'");
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::IoError("cannot delete " + dir.string());
  return Status::OK();
}

bool Catalog::Contains(const std::string& name) const {
  return fs::exists(fs::path(root_) / name / "index.bin");
}

std::vector<std::string> Catalog::ListVideos() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.is_directory() && fs::exists(entry.path() / "index.bin")) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace storage
}  // namespace vaq
