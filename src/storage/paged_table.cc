#include "storage/paged_table.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"

namespace vaq {
namespace storage {
namespace {

constexpr uint64_t kPagedMagic = 0x5641515f50474432ULL;  // "VAQ_PGD2"
constexpr int64_t kHeaderBytes = 4096;
constexpr int64_t kRowBytes =
    static_cast<int64_t>(sizeof(int64_t) + sizeof(double));
// Integrity pages are a fixed 4096 bytes regardless of the cache's page
// size: checksums are a property of the file, not of the reader.
constexpr int64_t kIntegrityPageBytes = 4096;

// Layout: [header page][num_rows sorted rows][num_rows by-clip doubles]
// [zero pad to an integrity-page boundary][per-page uint64 checksums].
int64_t SortedRowOffset(int64_t rank) {
  return kHeaderBytes + rank * kRowBytes;
}
int64_t ByClipOffset(int64_t num_rows, ClipIndex cid) {
  return kHeaderBytes + num_rows * kRowBytes +
         cid * static_cast<int64_t>(sizeof(double));
}
int64_t DataEnd(int64_t num_rows) {
  return kHeaderBytes +
         num_rows * (kRowBytes + static_cast<int64_t>(sizeof(double)));
}
int64_t PaddedDataEnd(int64_t num_rows) {
  const int64_t end = DataEnd(num_rows);
  return (end + kIntegrityPageBytes - 1) / kIntegrityPageBytes *
         kIntegrityPageBytes;
}

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Accumulates a byte stream into fixed-size integrity-page checksums.
class PageChecksummer {
 public:
  void Append(const char* data, int64_t size) {
    while (size > 0) {
      const int64_t take =
          std::min(size, kIntegrityPageBytes -
                             static_cast<int64_t>(buffer_.size()));
      buffer_.insert(buffer_.end(), data, data + take);
      data += take;
      size -= take;
      if (static_cast<int64_t>(buffer_.size()) == kIntegrityPageBytes) {
        sums_.push_back(Fnv1a64(buffer_.data(), buffer_.size()));
        buffer_.clear();
      }
    }
  }
  // Checksums so far; the stream must end on a page boundary.
  const std::vector<uint64_t>& sums() const {
    VAQ_CHECK(buffer_.empty()) << "stream not page-aligned";
    return sums_;
  }

 private:
  std::vector<char> buffer_;
  std::vector<uint64_t> sums_;
};

}  // namespace

PageCache::PageCache(int64_t capacity_pages, int64_t page_size)
    : capacity_pages_(capacity_pages), page_size_(page_size) {
  VAQ_CHECK_GT(capacity_pages, 0);
  VAQ_CHECK_GT(page_size, 0);
}

StatusOr<std::shared_ptr<const std::vector<char>>> PageCache::Get(
    int fd, int64_t page_index) {
  const Key key{fd, page_index};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
      return lru_.front().bytes;
    }
  }
  // Miss: perform the physical read outside the lock so concurrent
  // readers of other pages are not serialized behind it. Two threads may
  // race to read the same page; the loser's copy is discarded below.
  fetches_.fetch_add(1, std::memory_order_relaxed);
  if (fault_plan_ != nullptr) {
    // Retry a failed physical read twice with fresh attempt nonces; only
    // a fault persisting across all three attempts surfaces to the
    // caller (probability rate^3 per miss).
    constexpr int64_t kMaxAttempts = 3;
    int64_t failed = 0;
    while (failed < kMaxAttempts &&
           fault_plan_->PageReadFails(page_index, failed)) {
      injected_read_faults_.fetch_add(1, std::memory_order_relaxed);
      ++failed;
    }
    read_retries_.fetch_add(std::min(failed, kMaxAttempts - 1),
                            std::memory_order_relaxed);
    if (failed == kMaxAttempts) {
      return Status::Unavailable("injected read fault persisted for page " +
                                 std::to_string(page_index));
    }
  }
  auto bytes =
      std::make_shared<std::vector<char>>(static_cast<size_t>(page_size_), 0);
  const ssize_t got = ::pread(fd, bytes->data(),
                              static_cast<size_t>(page_size_),
                              page_index * page_size_);
  if (got < 0) {
    return Status::IoError("pread failed for page " +
                           std::to_string(page_index));
  }
  // Short reads at EOF leave the tail zeroed; offsets are validated by
  // the table layer, so this only happens for the final partial page.
  std::shared_ptr<const std::vector<char>> page = std::move(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread cached the page while we were reading it.
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().bytes;
  }
  lru_.push_front(Entry{key, page});
  index_[key] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_pages_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return page;
}

void PageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

Status WritePagedTable(const ScoreTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  PageChecksummer checksums;
  const auto emit = [&out, &checksums](const void* data, int64_t size) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    checksums.Append(static_cast<const char*>(data), size);
  };
  // Header page.
  std::vector<char> header(static_cast<size_t>(kHeaderBytes), 0);
  const uint64_t magic = kPagedMagic;
  const int64_t num_rows = table.num_rows();
  std::memcpy(header.data(), &magic, sizeof(magic));
  std::memcpy(header.data() + sizeof(magic), &num_rows, sizeof(num_rows));
  emit(header.data(), kHeaderBytes);
  // Sorted rows (score order).
  for (int64_t rank = 0; rank < num_rows; ++rank) {
    const ScoreRow row = table.SortedRow(rank);
    emit(&row.clip, sizeof(row.clip));
    emit(&row.score, sizeof(row.score));
  }
  // By-clip projection.
  for (ClipIndex cid = 0; cid < num_rows; ++cid) {
    const double score = table.PeekScore(cid);
    emit(&score, sizeof(score));
  }
  // Pad the data region to an integrity-page boundary, then append the
  // per-page checksum trailer.
  const std::vector<char> pad(
      static_cast<size_t>(PaddedDataEnd(num_rows) - DataEnd(num_rows)), 0);
  if (!pad.empty()) emit(pad.data(), static_cast<int64_t>(pad.size()));
  const std::vector<uint64_t>& sums = checksums.sums();
  out.write(reinterpret_cast<const char*>(sums.data()),
            static_cast<std::streamsize>(sums.size() * sizeof(uint64_t)));
  table.ResetCounter();  // The export scan is not part of any query.
  if (!out) return Status::IoError("short write: " + path);
  return Status::OK();
}

PagedScoreTable::PagedScoreTable(int fd, int64_t num_rows, PageCache* cache)
    : fd_(fd), num_rows_(num_rows), cache_(cache) {}

PagedScoreTable::~PagedScoreTable() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<PagedScoreTable>> PagedScoreTable::Open(
    const std::string& path, PageCache* cache) {
  VAQ_CHECK(cache != nullptr);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open: " + path);
  char header[16];
  if (::pread(fd, header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    return Status::Corruption("short header: " + path);
  }
  uint64_t magic = 0;
  int64_t num_rows = 0;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&num_rows, header + sizeof(magic), sizeof(num_rows));
  if (magic != kPagedMagic || num_rows < 0) {
    ::close(fd);
    return Status::Corruption("bad paged table header: " + path);
  }
  // One-time integrity scan: verify every data page (direct reads, not
  // through the cache) against the checksum trailer.
  const int64_t padded_end = PaddedDataEnd(num_rows);
  const int64_t num_pages = padded_end / kIntegrityPageBytes;
  std::vector<uint64_t> expected(static_cast<size_t>(num_pages), 0);
  const int64_t trailer_bytes =
      num_pages * static_cast<int64_t>(sizeof(uint64_t));
  if (::pread(fd, expected.data(), static_cast<size_t>(trailer_bytes),
              padded_end) != static_cast<ssize_t>(trailer_bytes)) {
    ::close(fd);
    return Status::Corruption("truncated checksum trailer: " + path);
  }
  std::vector<char> page(static_cast<size_t>(kIntegrityPageBytes), 0);
  for (int64_t p = 0; p < num_pages; ++p) {
    if (::pread(fd, page.data(), page.size(), p * kIntegrityPageBytes) !=
        static_cast<ssize_t>(page.size())) {
      ::close(fd);
      return Status::Corruption("truncated page " + std::to_string(p) + ": " +
                                path);
    }
    if (Fnv1a64(page.data(), page.size()) !=
        expected[static_cast<size_t>(p)]) {
      ::close(fd);
      return Status::Corruption("checksum mismatch on page " +
                                std::to_string(p) + ": " + path);
    }
  }
  return std::unique_ptr<PagedScoreTable>(
      new PagedScoreTable(fd, num_rows, cache));
}

void PagedScoreTable::ReadAt(int64_t offset, void* out, int64_t size) const {
  char* dst = static_cast<char*>(out);
  int64_t remaining = size;
  int64_t pos = offset;
  while (remaining > 0) {
    const int64_t page = pos / cache_->page_size();
    const int64_t in_page = pos % cache_->page_size();
    const int64_t chunk =
        std::min(remaining, cache_->page_size() - in_page);
    auto bytes = cache_->Get(fd_, page);
    VAQ_CHECK(bytes.ok()) << bytes.status().ToString();
    std::memcpy(dst, bytes.value()->data() + in_page,
                static_cast<size_t>(chunk));
    dst += chunk;
    pos += chunk;
    remaining -= chunk;
  }
}

ScoreRow PagedScoreTable::SortedRow(int64_t rank) const {
  VAQ_CHECK_GE(rank, 0);
  VAQ_CHECK_LT(rank, num_rows_);
  ++counter_.sorted_accesses;
  ScoreRow row;
  char buffer[kRowBytes];
  ReadAt(SortedRowOffset(rank), buffer, kRowBytes);
  std::memcpy(&row.clip, buffer, sizeof(row.clip));
  std::memcpy(&row.score, buffer + sizeof(row.clip), sizeof(row.score));
  return row;
}

ScoreRow PagedScoreTable::ReverseRow(int64_t rank) const {
  VAQ_CHECK_GE(rank, 0);
  VAQ_CHECK_LT(rank, num_rows_);
  ++counter_.reverse_accesses;
  ScoreRow row;
  char buffer[kRowBytes];
  ReadAt(SortedRowOffset(num_rows_ - 1 - rank), buffer, kRowBytes);
  std::memcpy(&row.clip, buffer, sizeof(row.clip));
  std::memcpy(&row.score, buffer + sizeof(row.clip), sizeof(row.score));
  return row;
}

double PagedScoreTable::RandomScore(ClipIndex cid) const {
  VAQ_CHECK_GE(cid, 0);
  VAQ_CHECK_LT(cid, num_rows_);
  ++counter_.random_accesses;
  double score = 0;
  ReadAt(ByClipOffset(num_rows_, cid), &score, sizeof(score));
  return score;
}

void PagedScoreTable::RangeScores(ClipIndex lo, ClipIndex hi,
                                  std::vector<double>* out) const {
  VAQ_CHECK_GE(lo, 0);
  VAQ_CHECK_LE(lo, hi);
  VAQ_CHECK_LT(hi, num_rows_);
  ++counter_.range_scans;
  counter_.range_rows += hi - lo + 1;
  const size_t count = static_cast<size_t>(hi - lo + 1);
  const size_t base = out->size();
  out->resize(base + count);
  ReadAt(ByClipOffset(num_rows_, lo), out->data() + base,
         static_cast<int64_t>(count * sizeof(double)));
}

}  // namespace storage
}  // namespace vaq
