// Algorithm 2 of the paper: the per-clip query indicator.
//
// For each object predicate o_i the evaluator counts positive frame
// predictions within the clip and fires the predicate's indicator when the
// count reaches k_crit_{o_i} (Eq. 1). The action predicate is the same at
// shot granularity (Eq. 2). The clip satisfies the query when every
// predicate indicator fires (Eq. 3). Predicates are evaluated in query
// order and evaluation short-circuits on the first negative predicate
// (saving model invocations), exactly as in Algorithm 2.
#ifndef VAQ_ONLINE_CLIP_EVALUATOR_H_
#define VAQ_ONLINE_CLIP_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "detect/models.h"
#include "detect/resilient.h"
#include "fault/fault_plan.h"
#include "video/layout.h"
#include "video/query_spec.h"

namespace vaq {
namespace online {

// Outcome of evaluating one clip. Counts are -1 for predicates that were
// skipped by short-circuiting.
struct ClipEvaluation {
  bool positive = false;
  // Per object predicate (query order): positive-frame count, or -1.
  std::vector<int64_t> object_counts;
  // Positive-shot count of the action predicate, or -1 when skipped.
  int64_t action_count = -1;
  // Number of frames / shots in this clip (trailing clips may be short).
  int64_t frames_in_clip = 0;
  int64_t shots_in_clip = 0;

  // Occurrence units whose observation failed (resilient path; all zero
  // otherwise). Counts above cover only the successfully observed units.
  std::vector<int64_t> object_missing;
  int64_t action_missing = 0;
  // The whole clip's observations were lost (drop-clip fault): every unit
  // of every predicate is missing and no model was invoked.
  bool dropped = false;

  bool ObjectEvaluated(size_t i) const { return object_counts[i] >= 0; }
  bool ActionEvaluated() const { return action_count >= 0; }
  bool Degraded() const {
    if (dropped || action_missing > 0) return true;
    for (const int64_t m : object_missing) {
      if (m > 0) return true;
    }
    return false;
  }
};

// Stateless evaluator bound to a query, a layout and the deployed models.
class ClipEvaluator {
 public:
  // `detector` is required when the query has object predicates,
  // `recognizer` when it has an action predicate; they must outlive the
  // evaluator.
  ClipEvaluator(const QuerySpec& query, const VideoLayout& layout,
                detect::ObjectDetector* detector,
                detect::ActionRecognizer* recognizer);

  // Evaluates `clip` against critical values `kcrit_objects` (one per
  // object predicate, in query order) and `kcrit_action`. When
  // `short_circuit` is true, later predicates are skipped as soon as one
  // fails.
  ClipEvaluation Evaluate(ClipIndex clip,
                          const std::vector<int64_t>& kcrit_objects,
                          int64_t kcrit_action, bool short_circuit) const;

  // Fault-tolerant variant: observations are routed through the resilient
  // wrappers; a failed occurrence unit is counted in
  // object_missing/action_missing instead of aborting the clip, and its
  // indicator contribution is filled by the engine's missing-observation
  // policy as an expected positive probability (`object_fallback[i]` /
  // `action_fallback`, in [0, 1]). A predicate fires when
  //   observed_count + missing * fallback >= kcrit.
  // If `plan->DropClip(clip)` the clip is lost wholesale: no model is
  // invoked, every unit is missing, and the indicators are decided purely
  // from the fallback rates. With no missing units the result is
  // bit-identical to Evaluate().
  ClipEvaluation EvaluateResilient(
      ClipIndex clip, const std::vector<int64_t>& kcrit_objects,
      int64_t kcrit_action, bool short_circuit,
      detect::ResilientObjectDetector* detector,
      detect::ResilientActionRecognizer* recognizer,
      const fault::FaultPlan* plan,
      const std::vector<double>& object_fallback,
      double action_fallback) const;

  const QuerySpec& query() const { return query_; }
  const VideoLayout& layout() const { return layout_; }

 private:
  QuerySpec query_;
  VideoLayout layout_;
  detect::ObjectDetector* detector_;
  detect::ActionRecognizer* recognizer_;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_CLIP_EVALUATOR_H_
