// Algorithm 2 of the paper: the per-clip query indicator.
//
// For each object predicate o_i the evaluator counts positive frame
// predictions within the clip and fires the predicate's indicator when the
// count reaches k_crit_{o_i} (Eq. 1). The action predicate is the same at
// shot granularity (Eq. 2). The clip satisfies the query when every
// predicate indicator fires (Eq. 3). Predicates are evaluated in query
// order and evaluation short-circuits on the first negative predicate
// (saving model invocations), exactly as in Algorithm 2.
#ifndef VAQ_ONLINE_CLIP_EVALUATOR_H_
#define VAQ_ONLINE_CLIP_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "detect/models.h"
#include "video/layout.h"
#include "video/query_spec.h"

namespace vaq {
namespace online {

// Outcome of evaluating one clip. Counts are -1 for predicates that were
// skipped by short-circuiting.
struct ClipEvaluation {
  bool positive = false;
  // Per object predicate (query order): positive-frame count, or -1.
  std::vector<int64_t> object_counts;
  // Positive-shot count of the action predicate, or -1 when skipped.
  int64_t action_count = -1;
  // Number of frames / shots in this clip (trailing clips may be short).
  int64_t frames_in_clip = 0;
  int64_t shots_in_clip = 0;

  bool ObjectEvaluated(size_t i) const { return object_counts[i] >= 0; }
  bool ActionEvaluated() const { return action_count >= 0; }
};

// Stateless evaluator bound to a query, a layout and the deployed models.
class ClipEvaluator {
 public:
  // `detector` is required when the query has object predicates,
  // `recognizer` when it has an action predicate; they must outlive the
  // evaluator.
  ClipEvaluator(const QuerySpec& query, const VideoLayout& layout,
                detect::ObjectDetector* detector,
                detect::ActionRecognizer* recognizer);

  // Evaluates `clip` against critical values `kcrit_objects` (one per
  // object predicate, in query order) and `kcrit_action`. When
  // `short_circuit` is true, later predicates are skipped as soon as one
  // fails.
  ClipEvaluation Evaluate(ClipIndex clip,
                          const std::vector<int64_t>& kcrit_objects,
                          int64_t kcrit_action, bool short_circuit) const;

  const QuerySpec& query() const { return query_; }
  const VideoLayout& layout() const { return layout_; }

 private:
  QuerySpec query_;
  VideoLayout layout_;
  detect::ObjectDetector* detector_;
  detect::ActionRecognizer* recognizer_;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_CLIP_EVALUATOR_H_
