// Push-based incremental SVAQD.
//
// Svaqd::Run drives a whole (finite) video; a deployed monitoring system
// instead receives the stream clip by clip and must report result
// sequences *as they form* (§1: "query results have to be reported as the
// video streams"). `StreamingSvaqd` exposes exactly that contract:
//
//   StreamingSvaqd stream(query, layout, options, [](const auto& event) {
//     if (event.kind == SequenceEvent::Kind::kClosed) Alert(event.sequence);
//   });
//   while (camera.HasClip()) stream.PushClip(&detector, &recognizer);
//   stream.Finish();
//
// Events fire with one-clip latency for closures (a sequence is known to
// have ended only when the first negative clip after it is seen, per
// Eq. 4's maximality requirement) and immediately for openings and
// extensions. The adaptive machinery (kernel estimators, burst awareness,
// probing) is identical to Svaqd: feeding every clip of a finite video
// through PushClip reproduces Svaqd::Run bit for bit.
#ifndef VAQ_ONLINE_STREAMING_H_
#define VAQ_ONLINE_STREAMING_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "online/svaqd.h"

namespace vaq {
namespace online {

// A change in the set of result sequences.
struct SequenceEvent {
  enum class Kind {
    kOpened,    // A new sequence started at `sequence.lo` (== clip).
    kExtended,  // The open sequence grew to include `clip`.
    kClosed,    // The sequence [sequence.lo, sequence.hi] is final.
    kGap,       // `clip` had missing observations (fault injection):
                // indicators around it are degraded-confidence. Emitted
                // before the clip's open/extend/close event, if any.
  };
  Kind kind = Kind::kOpened;
  Interval sequence;
  ClipIndex clip = 0;  // The clip whose processing triggered the event.
};

class StreamingSvaqd {
 public:
  using Callback = std::function<void(const SequenceEvent&)>;

  // `layout` fixes the segmentation and the design horizon (its
  // num_frames bounds the stream; push at most NumClips() clips).
  StreamingSvaqd(QuerySpec query, VideoLayout layout, SvaqdOptions options,
                 Callback callback);
  ~StreamingSvaqd();

  StreamingSvaqd(const StreamingSvaqd&) = delete;
  StreamingSvaqd& operator=(const StreamingSvaqd&) = delete;

  // Processes the next clip of the stream (clip indices advance
  // implicitly). Returns the clip's query indicator, or
  // kFailedPrecondition after Finish() / kOutOfRange past the layout's
  // clip count (the stream state is untouched in either case). With fault
  // injection enabled, the same model instances must be passed on every
  // call (the resilience state is bound to them).
  StatusOr<bool> PushClip(detect::ObjectDetector* detector,
                          detect::ActionRecognizer* recognizer);

  // Skips the next clip without invoking any model: the caller (e.g. the
  // serving layer's cascade prefilter, src/cascade/) already knows the
  // clip cannot satisfy the query. Behaves like a clip whose query
  // indicator is false — an open sequence closes, the stream cursor and
  // the virtual clock advance — but performs no observation and no
  // adaptive update. Returns false, or the same errors as PushClip.
  StatusOr<bool> PushPrunedClip();

  // Ends the stream, closing any open sequence.
  void Finish();

  // Clips processed with at least one missing observation / lost
  // wholesale (nonzero only under fault injection).
  int64_t degraded_clips() const { return degraded_clips_; }
  int64_t dropped_clips() const { return dropped_clips_; }

  // Clips pushed so far; the next PushClip processes this index.
  ClipIndex next_clip() const { return next_clip_; }
  bool finished() const { return finished_; }
  // All sequences closed so far (plus the open one only after Finish()).
  const IntervalSet& sequences() const { return sequences_; }

  // Serializes the engine's complete mutable state — stream cursor, open
  // run, closed sequences, per-predicate kernel estimators and critical
  // values, simulated clock, and the resilience wrappers' retry/breaker
  // state — as a ckpt::Serializer blob (DESIGN.md §10). Restoring it on a
  // freshly constructed engine with the identical (query, layout,
  // options) resumes the exact trajectory: pushing the remaining clips
  // yields bit-identical indicators, sequences and stats deltas.
  std::string SnapshotState() const;
  // kFailedPrecondition unless this engine is fresh (no clips pushed);
  // kCorruption / kInvalidArgument when the blob is damaged or shaped for
  // a different query.
  Status RestoreState(const std::string& blob);

 private:
  struct State;  // Per-predicate adaptive state (internal).

  QuerySpec query_;
  VideoLayout layout_;
  SvaqdOptions options_;
  Callback callback_;
  std::unique_ptr<State> state_;
  IntervalSet sequences_;
  ClipIndex next_clip_ = 0;
  ClipIndex open_start_ = -1;  // Start of the currently open run, or -1.
  bool finished_ = false;
  int64_t degraded_clips_ = 0;
  int64_t dropped_clips_ = 0;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_STREAMING_H_
