// Checkpoint payload encoders for the online engines' adaptive state.
// Internal to vaq_online: StreamingSvaqd::SnapshotState and
// CnfStream::SnapshotState share these so the two engines' blobs evolve
// together.
//
// Everything here round-trips exactly: doubles travel as IEEE-754 bit
// patterns, so a restored engine continues on the *identical* floating-
// point trajectory — the byte-identical-recovery invariant depends on it.
#ifndef VAQ_ONLINE_STATE_CODEC_H_
#define VAQ_ONLINE_STATE_CODEC_H_

#include "ckpt/serializer.h"
#include "common/interval.h"
#include "common/status.h"
#include "detect/resilient.h"
#include "online/predicate_state.h"
#include "scanstat/kernel_estimator.h"

namespace vaq {
namespace online {
namespace internal_online {

inline void EncodeEstimator(const scanstat::KernelRateEstimator& e,
                            ckpt::Payload* out) {
  const scanstat::KernelRateEstimator::State s = e.state();
  out->PutF64(s.event_weight);
  out->PutF64(s.total_weight);
  out->PutI64(s.num_observed);
}

inline Status DecodeEstimator(ckpt::PayloadReader* in,
                              scanstat::KernelRateEstimator* e) {
  scanstat::KernelRateEstimator::State s;
  VAQ_RETURN_IF_ERROR(in->GetF64(&s.event_weight));
  VAQ_RETURN_IF_ERROR(in->GetF64(&s.total_weight));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s.num_observed));
  e->set_state(s);
  return Status::OK();
}

inline void EncodePredicateState(const PredicateState& p,
                                 ckpt::Payload* out) {
  EncodeEstimator(p.estimator, out);
  out->PutF64(p.p_at_last_compute);
  out->PutI64(p.kcrit);
  out->PutF64(p.last_observed_rate);
  out->PutF64(p.count_weight);
  out->PutF64(p.count_sum);
  out->PutF64(p.count_sq_sum);
  out->PutF64(p.window_sum);
}

inline Status DecodePredicateState(ckpt::PayloadReader* in,
                                   PredicateState* p) {
  VAQ_RETURN_IF_ERROR(DecodeEstimator(in, &p->estimator));
  VAQ_RETURN_IF_ERROR(in->GetF64(&p->p_at_last_compute));
  VAQ_RETURN_IF_ERROR(in->GetI64(&p->kcrit));
  VAQ_RETURN_IF_ERROR(in->GetF64(&p->last_observed_rate));
  VAQ_RETURN_IF_ERROR(in->GetF64(&p->count_weight));
  VAQ_RETURN_IF_ERROR(in->GetF64(&p->count_sum));
  VAQ_RETURN_IF_ERROR(in->GetF64(&p->count_sq_sum));
  VAQ_RETURN_IF_ERROR(in->GetF64(&p->window_sum));
  return Status::OK();
}

inline void EncodeResilientCoreState(
    const detect::internal_detect::ResilientCore::State& s,
    ckpt::Payload* out) {
  out->PutI64(s.attempt_nonce);
  out->PutI64(s.consecutive_failures);
  out->PutBool(s.breaker_open);
  out->PutF64(s.breaker_reopen_ms);
}

inline Status DecodeResilientCoreState(
    ckpt::PayloadReader* in,
    detect::internal_detect::ResilientCore::State* s) {
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->attempt_nonce));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->consecutive_failures));
  VAQ_RETURN_IF_ERROR(in->GetBool(&s->breaker_open));
  VAQ_RETURN_IF_ERROR(in->GetF64(&s->breaker_reopen_ms));
  return Status::OK();
}

inline void EncodeIntervalSet(const IntervalSet& set, ckpt::Payload* out) {
  out->PutU32(static_cast<uint32_t>(set.size()));
  for (const Interval& iv : set.intervals()) {
    out->PutI64(iv.lo);
    out->PutI64(iv.hi);
  }
}

inline Status DecodeIntervalSet(ckpt::PayloadReader* in, IntervalSet* set) {
  uint32_t n = 0;
  VAQ_RETURN_IF_ERROR(in->GetU32(&n));
  *set = IntervalSet();
  for (uint32_t i = 0; i < n; ++i) {
    Interval iv;
    VAQ_RETURN_IF_ERROR(in->GetI64(&iv.lo));
    VAQ_RETURN_IF_ERROR(in->GetI64(&iv.hi));
    set->Add(iv);
  }
  return Status::OK();
}

}  // namespace internal_online
}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_STATE_CODEC_H_
