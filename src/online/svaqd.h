// Algorithm SVAQD (§3.3): SVAQ with dynamic background-probability
// estimation.
//
// Each predicate carries an edge-corrected exponential-kernel rate
// estimator (Eq. 6 / KernelRateEstimator). After each processed clip the
// estimators ingest the clip's per-predicate positive-prediction counts,
// and the critical values are re-derived from the current estimates
// whenever they have drifted materially. This removes the dependence on
// the initial background probability, adapts to sudden rate changes
// (concept drift) and ignores gradual ones, as Figure 2 of the paper
// demonstrates.
#ifndef VAQ_ONLINE_SVAQD_H_
#define VAQ_ONLINE_SVAQD_H_

#include <cstdint>
#include <vector>

#include "detect/resilient.h"
#include "fault/fault_plan.h"
#include "online/svaq.h"
#include "scanstat/kernel_estimator.h"

namespace vaq {
namespace online {

// What a failed (or dropped) observation contributes to a predicate's
// clip count. Each missing occurrence unit is filled with an expected
// positive probability; the predicate fires when
// observed_count + missing * fallback >= k_crit. A detector outage thus
// degrades F1 smoothly instead of hard-flipping every affected clip to
// negative (or fabricating positives).
enum class MissingObsPolicy {
  // Fallback 0: a missing unit never contributes. Conservative — recall
  // collapses during long outages, precision is protected.
  kAssumeNegative,
  // Fallback = the predicate's positive rate in the most recent clip with
  // successful observations. Tracks the local signal level; best when
  // outages are short relative to sequences.
  kCarryLast,
  // Fallback = the kernel estimator's current background rate (the same
  // p̂ that drives the critical values). The principled neutral choice:
  // a missing unit behaves like background, so outages neither open
  // spurious sequences nor veto clips whose observed units already carry
  // the evidence.
  kBackgroundPrior,
};

// Which clips feed the background estimators.
enum class UpdatePolicy {
  // Per-predicate signal suppression (the robust default): a predicate's
  // estimator ingests a clip only when that predicate's positive count is
  // below an eighth of the clip's occurrence units. Clips where the predicate is
  // plainly satisfied (count near the model's TPR) are excluded, so the
  // estimator converges to the model's false-positive rate — the
  // background probability Eq. 5 actually calls for — regardless of how
  // much of the stream satisfies the predicate, and regardless of the
  // initial p0 (a CFAR-style guard; see DESIGN.md).
  kSelfExcluding,
  // Only clips whose query indicator is 0 (current belief of background).
  kNegativeClipsOnly,
  // Every evaluated clip (the §3.3 text: smooth all observed events).
  // Appropriate when query-positive segments are rare.
  kAllClips,
  // Only clips whose query indicator is 1 (the literal condition printed
  // in Algorithm 3, line 7). Provided for fidelity and ablation.
  kPositiveClipsOnly,
};

struct SvaqdOptions {
  SvaqOptions base;
  // Kernel bandwidth u for object predicates, in frames.
  double bandwidth_frames = 12000;
  // Kernel bandwidth u for the action predicate, in shots.
  double bandwidth_shots = 600;
  // Pseudo-observation weight of the initial probability (the prior washes
  // out as real observations accumulate).
  double prior_weight = 30;
  // Critical values are re-derived when an estimate moves by more than
  // this relative amount since they were last computed (0 = every clip).
  double recompute_rel_tol = 0.02;
  UpdatePolicy update_policy = UpdatePolicy::kSelfExcluding;
  // Calibrate critical values for Markov-dependent (bursty) prediction
  // noise instead of iid trials (§3.2 footnote 7). The burstiness is
  // estimated online from the overdispersion of background clip counts:
  // the design effect D = Var(count) / (w p (1-p)) of a two-state chain
  // is (1+rho)/(1-rho), so rho = (D-1)/(D+1); critical values then come
  // from scanstat::MarkovCriticalValue. Costs a little recall when noise
  // is truly iid, buys back precision when detectors flicker in bursts
  // (see bench_ablation_burst).
  bool burst_aware = false;
  // Every `probe_period`-th clip is evaluated without short-circuiting so
  // that predicates late in the evaluation order still accumulate
  // background observations (otherwise a predicate that is usually
  // short-circuited away would starve its estimator and keep its initial
  // p0 forever). Costs a bounded amount of extra inference; 0 disables
  // probing.
  int64_t probe_period = 8;

  // --- Fault injection & graceful degradation (see src/fault/) ----------
  // When non-null, every model call is routed through a detect::Resilient*
  // wrapper driven by this plan (deadlines, retries, circuit breaker) and
  // failed observations are filled by `missing_policy`. Not owned; must
  // outlive the engine. Null (the default) keeps the original zero-
  // overhead path — outputs are bit-identical to a fault-free build.
  const fault::FaultPlan* fault_plan = nullptr;
  detect::ResilienceOptions resilience;
  MissingObsPolicy missing_policy = MissingObsPolicy::kBackgroundPrior;
};

namespace internal_online {

struct PredicateState;

// Fallback positive probability for one predicate's missing observations
// under `policy`.
double FallbackRate(MissingObsPolicy policy, const PredicateState& state);

// Post-clip adaptive-state update (carry-last tracking, background
// estimator feeding, lazy critical-value recomputation) shared verbatim by
// Svaqd::Run and StreamingSvaqd::PushClip. Only successfully observed
// occurrence units reach the estimators, so injected faults cannot bias
// the background rate.
void UpdateAdaptiveState(const SvaqdOptions& options,
                         const ClipEvaluation& eval,
                         std::vector<PredicateState>* objects,
                         PredicateState* action);

}  // namespace internal_online

// SVAQD per Algorithm 3.
class Svaqd {
 public:
  Svaqd(QuerySpec query, VideoLayout layout, SvaqdOptions options);

  OnlineResult Run(detect::ObjectDetector* detector,
                   detect::ActionRecognizer* recognizer) const;

  const SvaqdOptions& options() const { return options_; }

 private:
  QuerySpec query_;
  VideoLayout layout_;
  SvaqdOptions options_;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_SVAQD_H_
