// Algorithm SVAQD (§3.3): SVAQ with dynamic background-probability
// estimation.
//
// Each predicate carries an edge-corrected exponential-kernel rate
// estimator (Eq. 6 / KernelRateEstimator). After each processed clip the
// estimators ingest the clip's per-predicate positive-prediction counts,
// and the critical values are re-derived from the current estimates
// whenever they have drifted materially. This removes the dependence on
// the initial background probability, adapts to sudden rate changes
// (concept drift) and ignores gradual ones, as Figure 2 of the paper
// demonstrates.
#ifndef VAQ_ONLINE_SVAQD_H_
#define VAQ_ONLINE_SVAQD_H_

#include <cstdint>
#include <vector>

#include "online/svaq.h"
#include "scanstat/kernel_estimator.h"

namespace vaq {
namespace online {

// Which clips feed the background estimators.
enum class UpdatePolicy {
  // Per-predicate signal suppression (the robust default): a predicate's
  // estimator ingests a clip only when that predicate's positive count is
  // below an eighth of the clip's occurrence units. Clips where the predicate is
  // plainly satisfied (count near the model's TPR) are excluded, so the
  // estimator converges to the model's false-positive rate — the
  // background probability Eq. 5 actually calls for — regardless of how
  // much of the stream satisfies the predicate, and regardless of the
  // initial p0 (a CFAR-style guard; see DESIGN.md).
  kSelfExcluding,
  // Only clips whose query indicator is 0 (current belief of background).
  kNegativeClipsOnly,
  // Every evaluated clip (the §3.3 text: smooth all observed events).
  // Appropriate when query-positive segments are rare.
  kAllClips,
  // Only clips whose query indicator is 1 (the literal condition printed
  // in Algorithm 3, line 7). Provided for fidelity and ablation.
  kPositiveClipsOnly,
};

struct SvaqdOptions {
  SvaqOptions base;
  // Kernel bandwidth u for object predicates, in frames.
  double bandwidth_frames = 12000;
  // Kernel bandwidth u for the action predicate, in shots.
  double bandwidth_shots = 600;
  // Pseudo-observation weight of the initial probability (the prior washes
  // out as real observations accumulate).
  double prior_weight = 30;
  // Critical values are re-derived when an estimate moves by more than
  // this relative amount since they were last computed (0 = every clip).
  double recompute_rel_tol = 0.02;
  UpdatePolicy update_policy = UpdatePolicy::kSelfExcluding;
  // Calibrate critical values for Markov-dependent (bursty) prediction
  // noise instead of iid trials (§3.2 footnote 7). The burstiness is
  // estimated online from the overdispersion of background clip counts:
  // the design effect D = Var(count) / (w p (1-p)) of a two-state chain
  // is (1+rho)/(1-rho), so rho = (D-1)/(D+1); critical values then come
  // from scanstat::MarkovCriticalValue. Costs a little recall when noise
  // is truly iid, buys back precision when detectors flicker in bursts
  // (see bench_ablation_burst).
  bool burst_aware = false;
  // Every `probe_period`-th clip is evaluated without short-circuiting so
  // that predicates late in the evaluation order still accumulate
  // background observations (otherwise a predicate that is usually
  // short-circuited away would starve its estimator and keep its initial
  // p0 forever). Costs a bounded amount of extra inference; 0 disables
  // probing.
  int64_t probe_period = 8;
};

// SVAQD per Algorithm 3.
class Svaqd {
 public:
  Svaqd(QuerySpec query, VideoLayout layout, SvaqdOptions options);

  OnlineResult Run(detect::ObjectDetector* detector,
                   detect::ActionRecognizer* recognizer) const;

  const SvaqdOptions& options() const { return options_; }

 private:
  QuerySpec query_;
  VideoLayout layout_;
  SvaqdOptions options_;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_SVAQD_H_
