#include "online/svaq.h"

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaq {
namespace online {

scanstat::ScanConfig ObjectScanConfig(const VideoLayout& layout,
                                      const SvaqOptions& options) {
  scanstat::ScanConfig config;
  config.window = layout.frames_per_clip();
  config.horizon = options.horizon_frames > 0 ? options.horizon_frames
                                              : layout.num_frames();
  config.horizon = std::max(config.horizon, config.window);
  config.alpha = options.alpha;
  return config;
}

scanstat::ScanConfig ActionScanConfig(const VideoLayout& layout,
                                      const SvaqOptions& options) {
  scanstat::ScanConfig config;
  config.window = layout.shots_per_clip();
  const int64_t horizon_frames = options.horizon_frames > 0
                                     ? options.horizon_frames
                                     : layout.num_frames();
  config.horizon =
      std::max<int64_t>(horizon_frames / layout.frames_per_shot(),
                        config.window);
  config.alpha = options.alpha;
  return config;
}

Svaq::Svaq(QuerySpec query, VideoLayout layout, SvaqOptions options)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)) {
  if (!options_.p0_per_object.empty()) {
    VAQ_CHECK_EQ(options_.p0_per_object.size(), query_.objects.size());
  }
}

std::vector<int64_t> Svaq::InitialObjectCriticalValues() const {
  const scanstat::ScanConfig config = ObjectScanConfig(layout_, options_);
  std::vector<int64_t> kcrit(query_.objects.size());
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const double p0 = options_.p0_per_object.empty()
                          ? options_.p0_object
                          : options_.p0_per_object[i];
    kcrit[i] = scanstat::CriticalValue(p0, config);
  }
  return kcrit;
}

int64_t Svaq::InitialActionCriticalValue() const {
  if (!query_.has_action()) return 0;
  return scanstat::CriticalValue(options_.p0_action,
                                 ActionScanConfig(layout_, options_));
}

OnlineResult Svaq::Run(detect::ObjectDetector* detector,
                       detect::ActionRecognizer* recognizer) const {
  VAQ_TRACE_SPAN("svaq/run");
  const auto start = std::chrono::steady_clock::now();
  OnlineResult result;
  const detect::ModelStats detector_stats_before =
      detector != nullptr ? detector->stats() : detect::ModelStats();
  const detect::ModelStats recognizer_stats_before =
      recognizer != nullptr ? recognizer->stats() : detect::ModelStats();
  result.kcrit_objects = InitialObjectCriticalValues();
  result.kcrit_action = InitialActionCriticalValue();

  // Registry mirrors (logical quantities only, so seeded runs stay
  // byte-reproducible): the latency histogram observes *simulated* model
  // milliseconds per clip, never wall time.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  obs::Counter* metric_clips =
      registry.GetCounter("vaq_clips_processed_total", {{"engine", "svaq"}});
  obs::Counter* metric_rejections = registry.GetCounter(
      "vaq_scanstat_rejections_total", {{"engine", "svaq"}});
  obs::Histogram* metric_clip_ms =
      registry.GetHistogram("vaq_clip_eval_simulated_ms",
                            obs::DefaultLatencyBucketsMs(),
                            {{"engine", "svaq"}});
  const auto simulated_ms = [&] {
    double ms = 0.0;
    if (detector != nullptr) ms += detector->stats().simulated_ms;
    if (recognizer != nullptr) ms += recognizer->stats().simulated_ms;
    return ms;
  };

  ClipEvaluator evaluator(query_, layout_, detector, recognizer);
  const int64_t num_clips = layout_.NumClips();
  result.clip_indicator.resize(static_cast<size_t>(num_clips), false);
  for (ClipIndex c = 0; c < num_clips; ++c) {
    const double clip_start_ms = simulated_ms();
    const ClipEvaluation eval =
        evaluator.Evaluate(c, result.kcrit_objects, result.kcrit_action,
                           options_.short_circuit);
    result.clip_indicator[static_cast<size_t>(c)] = eval.positive;
    ++result.clips_processed;
    metric_clips->Increment();
    if (eval.positive) metric_rejections->Increment();
    metric_clip_ms->Observe(simulated_ms() - clip_start_ms);
  }
  result.sequences = IntervalSet::FromIndicators(result.clip_indicator);
  // Per-run deltas, so stats stay per-query when a model bundle is shared
  // across successive runs (the serving layer's shared detection cache).
  if (detector != nullptr) {
    result.detector_stats = detector->stats() - detector_stats_before;
  }
  if (recognizer != nullptr) {
    result.recognizer_stats = recognizer->stats() - recognizer_stats_before;
  }
  result.algorithm_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace online
}  // namespace vaq
