// Shared per-predicate adaptive state of the SVAQD-family engines:
// kernel background estimator, burstiness moments, and the lazily
// recomputed critical value. Internal to vaq_online.
#ifndef VAQ_ONLINE_PREDICATE_STATE_H_
#define VAQ_ONLINE_PREDICATE_STATE_H_

#include <algorithm>
#include <cmath>

#include "scanstat/critical_value.h"
#include "scanstat/kernel_estimator.h"
#include "scanstat/markov.h"

namespace vaq {
namespace online {
namespace internal_online {

// Tracks one predicate's background estimate and critical value.
struct PredicateState {
  scanstat::KernelRateEstimator estimator;
  scanstat::ScanConfig config;
  bool burst_aware = false;
  double p_at_last_compute = -1.0;
  int64_t kcrit = 0;
  // Positive rate in the most recent clip with successful observations;
  // feeds MissingObsPolicy::kCarryLast during detector outages.
  double last_observed_rate = 0.0;
  // Exponentially-weighted moments of background clip counts, used to
  // estimate the burstiness (design effect) when burst_aware is set.
  double count_weight = 0.0;
  double count_sum = 0.0;
  double count_sq_sum = 0.0;
  double window_sum = 0.0;

  PredicateState(double bandwidth, double prior_p, double prior_weight,
                 scanstat::ScanConfig cfg, bool burst_aware_in)
      : estimator(bandwidth, prior_p, prior_weight),
        config(cfg),
        burst_aware(burst_aware_in) {
    Recompute();
  }

  // Records one background clip's count for the overdispersion estimate
  // (decay keeps a horizon of a few hundred clips).
  void ObserveCount(int64_t count, int64_t units) {
    constexpr double kDecay = 0.995;
    count_weight = count_weight * kDecay + 1.0;
    count_sum = count_sum * kDecay + static_cast<double>(count);
    count_sq_sum = count_sq_sum * kDecay +
                   static_cast<double>(count) * static_cast<double>(count);
    window_sum = window_sum * kDecay + static_cast<double>(units);
  }

  // Lag-1 autocorrelation implied by the observed overdispersion of
  // background counts; 0 until enough clips have been seen.
  double EstimatedRho() const {
    if (count_weight < 20.0) return 0.0;
    const double mean = count_sum / count_weight;
    const double var =
        std::max(0.0, count_sq_sum / count_weight - mean * mean);
    const double w = window_sum / count_weight;
    const double p = std::clamp(mean / std::max(w, 1.0), 1e-9, 0.999);
    const double binomial_var = w * p * (1.0 - p);
    if (binomial_var <= 0.0) return 0.0;
    const double design = std::max(1.0, var / binomial_var);
    return std::clamp((design - 1.0) / (design + 1.0), 0.0, 0.95);
  }

  void Recompute() {
    p_at_last_compute = estimator.rate();
    if (burst_aware) {
      kcrit = scanstat::MarkovCriticalValue(
          scanstat::MarkovParams::FromStationaryAndRho(p_at_last_compute,
                                                       EstimatedRho()),
          config);
    } else {
      kcrit = scanstat::CriticalValue(p_at_last_compute, config);
    }
  }

  // Recomputes the critical value if the estimate drifted beyond the
  // relative tolerance.
  void MaybeRecompute(double rel_tol) {
    const double p = estimator.rate();
    const double ref = std::max(p_at_last_compute, 1e-12);
    if (rel_tol <= 0.0 || std::fabs(p - p_at_last_compute) / ref > rel_tol) {
      Recompute();
    }
  }
};

}  // namespace internal_online
}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_PREDICATE_STATE_H_
