#include "online/svaqd.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "fault/sim_clock.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "online/predicate_state.h"
#include "scanstat/critical_value.h"
#include "scanstat/markov.h"

namespace vaq {
namespace online {

using internal_online::PredicateState;

namespace {

const char* PolicyName(MissingObsPolicy policy) {
  switch (policy) {
    case MissingObsPolicy::kAssumeNegative:
      return "assume_negative";
    case MissingObsPolicy::kCarryLast:
      return "carry_last";
    case MissingObsPolicy::kBackgroundPrior:
      return "background_prior";
  }
  return "?";
}

}  // namespace

namespace internal_online {

double FallbackRate(MissingObsPolicy policy, const PredicateState& state) {
  switch (policy) {
    case MissingObsPolicy::kAssumeNegative:
      return 0.0;
    case MissingObsPolicy::kCarryLast:
      return state.last_observed_rate;
    case MissingObsPolicy::kBackgroundPrior:
      return state.estimator.rate();
  }
  return 0.0;
}

void UpdateAdaptiveState(const SvaqdOptions& options,
                         const ClipEvaluation& eval,
                         std::vector<PredicateState>* objects,
                         PredicateState* action) {
  // Carry-last tracking: each predicate's most recent observed rate.
  for (size_t i = 0; i < objects->size(); ++i) {
    if (!eval.ObjectEvaluated(i)) continue;
    const int64_t observed = eval.frames_in_clip - eval.object_missing[i];
    if (observed > 0) {
      (*objects)[i].last_observed_rate =
          static_cast<double>(eval.object_counts[i]) /
          static_cast<double>(observed);
    }
  }
  if (action != nullptr && eval.ActionEvaluated()) {
    const int64_t observed = eval.shots_in_clip - eval.action_missing;
    if (observed > 0) {
      action->last_observed_rate = static_cast<double>(eval.action_count) /
                                   static_cast<double>(observed);
    }
  }

  // Feed the background estimators according to the update policy; only
  // successfully observed units count.
  const bool clip_gate =
      options.update_policy == UpdatePolicy::kAllClips ||
      options.update_policy == UpdatePolicy::kSelfExcluding ||
      (options.update_policy == UpdatePolicy::kNegativeClipsOnly &&
       !eval.positive) ||
      (options.update_policy == UpdatePolicy::kPositiveClipsOnly &&
       eval.positive);
  if (!clip_gate) return;
  const bool self_excluding =
      options.update_policy == UpdatePolicy::kSelfExcluding;
  for (size_t i = 0; i < objects->size(); ++i) {
    if (!eval.ObjectEvaluated(i)) continue;
    const int64_t observed = eval.frames_in_clip - eval.object_missing[i];
    if (observed <= 0) continue;
    if (self_excluding && 8 * eval.object_counts[i] >= observed) {
      continue;  // Predicate plainly satisfied: not background.
    }
    PredicateState& state = (*objects)[i];
    state.estimator.ObserveBatch(observed, eval.object_counts[i]);
    state.ObserveCount(eval.object_counts[i], observed);
    state.MaybeRecompute(options.recompute_rel_tol);
  }
  if (action != nullptr && eval.ActionEvaluated()) {
    const int64_t observed = eval.shots_in_clip - eval.action_missing;
    if (observed > 0 &&
        !(self_excluding && 8 * eval.action_count >= observed)) {
      action->estimator.ObserveBatch(observed, eval.action_count);
      action->ObserveCount(eval.action_count, observed);
      action->MaybeRecompute(options.recompute_rel_tol);
    }
  }
}

}  // namespace internal_online

Svaqd::Svaqd(QuerySpec query, VideoLayout layout, SvaqdOptions options)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)) {
  if (!options_.base.p0_per_object.empty()) {
    VAQ_CHECK_EQ(options_.base.p0_per_object.size(), query_.objects.size());
  }
}

OnlineResult Svaqd::Run(detect::ObjectDetector* detector,
                        detect::ActionRecognizer* recognizer) const {
  VAQ_TRACE_SPAN("svaqd/run");
  const auto start = std::chrono::steady_clock::now();
  const SvaqOptions& base = options_.base;
  const detect::ModelStats detector_stats_before =
      detector != nullptr ? detector->stats() : detect::ModelStats();
  const detect::ModelStats recognizer_stats_before =
      recognizer != nullptr ? recognizer->stats() : detect::ModelStats();

  // Registry mirrors. Only logical quantities are recorded (clip counts
  // and *simulated* model milliseconds), so a seeded run — with or
  // without fault injection — exports a byte-identical snapshot.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  obs::Counter* metric_clips =
      registry.GetCounter("vaq_clips_processed_total", {{"engine", "svaqd"}});
  obs::Counter* metric_rejections = registry.GetCounter(
      "vaq_scanstat_rejections_total", {{"engine", "svaqd"}});
  obs::Counter* metric_degraded =
      registry.GetCounter("vaq_clips_degraded_total", {{"engine", "svaqd"}});
  obs::Counter* metric_dropped =
      registry.GetCounter("vaq_clips_dropped_total", {{"engine", "svaqd"}});
  obs::Counter* metric_gap_policy = registry.GetCounter(
      "vaq_gap_policy_activations_total",
      {{"engine", "svaqd"}, {"policy", PolicyName(options_.missing_policy)}});
  obs::Histogram* metric_clip_ms =
      registry.GetHistogram("vaq_clip_eval_simulated_ms",
                            obs::DefaultLatencyBucketsMs(),
                            {{"engine", "svaqd"}});
  const auto simulated_ms = [&] {
    double ms = 0.0;
    if (detector != nullptr) ms += detector->stats().simulated_ms;
    if (recognizer != nullptr) ms += recognizer->stats().simulated_ms;
    return ms;
  };

  // One estimator per object predicate plus one for the action.
  std::vector<PredicateState> objects;
  objects.reserve(query_.objects.size());
  const scanstat::ScanConfig object_config = ObjectScanConfig(layout_, base);
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const double p0 =
        base.p0_per_object.empty() ? base.p0_object : base.p0_per_object[i];
    objects.emplace_back(options_.bandwidth_frames, p0,
                         options_.prior_weight, object_config,
                         options_.burst_aware);
  }
  std::unique_ptr<PredicateState> action;
  if (query_.has_action()) {
    action = std::make_unique<PredicateState>(
        options_.bandwidth_shots, base.p0_action, options_.prior_weight,
        ActionScanConfig(layout_, base), options_.burst_aware);
  }

  ClipEvaluator evaluator(query_, layout_, detector, recognizer);
  OnlineResult result;
  const int64_t num_clips = layout_.NumClips();
  result.clip_indicator.resize(static_cast<size_t>(num_clips), false);

  // Fault injection: wrap the models once for the whole run. The wrapper
  // state (retry nonces, breaker, simulated clock) evolves clip by clip in
  // push order, exactly as StreamingSvaqd's does.
  const fault::FaultPlan* plan = options_.fault_plan;
  fault::SimClock clock;
  std::unique_ptr<detect::ResilientObjectDetector> rdetector;
  std::unique_ptr<detect::ResilientActionRecognizer> rrecognizer;
  if (plan != nullptr) {
    if (detector != nullptr) {
      rdetector = std::make_unique<detect::ResilientObjectDetector>(
          detector, plan, options_.resilience, &clock);
    }
    if (recognizer != nullptr) {
      rrecognizer = std::make_unique<detect::ResilientActionRecognizer>(
          recognizer, plan, options_.resilience, &clock);
    }
  }
  std::vector<double> object_fallback(objects.size(), 0.0);

  for (ClipIndex c = 0; c < num_clips; ++c) {
    VAQ_TRACE_SPAN("svaqd/clip_eval");
    std::vector<int64_t> kcrit_objects(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      kcrit_objects[i] = objects[i].kcrit;
    }
    const int64_t kcrit_action = action != nullptr ? action->kcrit : 0;
    const bool probe =
        options_.probe_period > 0 && c % options_.probe_period == 0;
    const double clip_start_ms = simulated_ms();
    ClipEvaluation eval;
    if (plan != nullptr) {
      clock.Advance(options_.resilience.clip_interval_ms);
      for (size_t i = 0; i < objects.size(); ++i) {
        object_fallback[i] =
            internal_online::FallbackRate(options_.missing_policy, objects[i]);
      }
      const double action_fallback =
          action != nullptr
              ? internal_online::FallbackRate(options_.missing_policy, *action)
              : 0.0;
      eval = evaluator.EvaluateResilient(
          c, kcrit_objects, kcrit_action, base.short_circuit && !probe,
          rdetector.get(), rrecognizer.get(), plan, object_fallback,
          action_fallback);
    } else {
      eval = evaluator.Evaluate(c, kcrit_objects, kcrit_action,
                                base.short_circuit && !probe);
    }
    result.clip_indicator[static_cast<size_t>(c)] = eval.positive;
    ++result.clips_processed;
    metric_clips->Increment();
    if (eval.positive) metric_rejections->Increment();
    if (eval.Degraded()) {
      ++result.degraded_clips;
      metric_degraded->Increment();
      // A degraded clip is exactly one where the missing-observation
      // (gap) policy had to fill in for abandoned model calls.
      metric_gap_policy->Increment();
    }
    if (eval.dropped) {
      ++result.dropped_clips;
      metric_dropped->Increment();
    }
    metric_clip_ms->Observe(simulated_ms() - clip_start_ms);

    internal_online::UpdateAdaptiveState(options_, eval, &objects,
                                         action.get());
  }

  result.sequences = IntervalSet::FromIndicators(result.clip_indicator);
  result.kcrit_objects.resize(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    result.kcrit_objects[i] = objects[i].kcrit;
  }
  result.kcrit_action = action != nullptr ? action->kcrit : 0;
  // Per-run deltas, so stats stay per-query when a model bundle is shared
  // across successive runs (the serving layer's shared detection cache).
  if (detector != nullptr) {
    result.detector_stats = detector->stats() - detector_stats_before;
  }
  if (recognizer != nullptr) {
    result.recognizer_stats = recognizer->stats() - recognizer_stats_before;
  }
  result.algorithm_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace online
}  // namespace vaq
