#include "online/svaqd.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "online/predicate_state.h"
#include "scanstat/critical_value.h"
#include "scanstat/markov.h"

namespace vaq {
namespace online {

using internal_online::PredicateState;

Svaqd::Svaqd(QuerySpec query, VideoLayout layout, SvaqdOptions options)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)) {
  if (!options_.base.p0_per_object.empty()) {
    VAQ_CHECK_EQ(options_.base.p0_per_object.size(), query_.objects.size());
  }
}

OnlineResult Svaqd::Run(detect::ObjectDetector* detector,
                        detect::ActionRecognizer* recognizer) const {
  const auto start = std::chrono::steady_clock::now();
  const SvaqOptions& base = options_.base;

  // One estimator per object predicate plus one for the action.
  std::vector<PredicateState> objects;
  objects.reserve(query_.objects.size());
  const scanstat::ScanConfig object_config = ObjectScanConfig(layout_, base);
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const double p0 =
        base.p0_per_object.empty() ? base.p0_object : base.p0_per_object[i];
    objects.emplace_back(options_.bandwidth_frames, p0,
                         options_.prior_weight, object_config,
                         options_.burst_aware);
  }
  std::unique_ptr<PredicateState> action;
  if (query_.has_action()) {
    action = std::make_unique<PredicateState>(
        options_.bandwidth_shots, base.p0_action, options_.prior_weight,
        ActionScanConfig(layout_, base), options_.burst_aware);
  }

  ClipEvaluator evaluator(query_, layout_, detector, recognizer);
  OnlineResult result;
  const int64_t num_clips = layout_.NumClips();
  result.clip_indicator.resize(static_cast<size_t>(num_clips), false);

  for (ClipIndex c = 0; c < num_clips; ++c) {
    std::vector<int64_t> kcrit_objects(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      kcrit_objects[i] = objects[i].kcrit;
    }
    const int64_t kcrit_action = action != nullptr ? action->kcrit : 0;
    const bool probe =
        options_.probe_period > 0 && c % options_.probe_period == 0;
    const ClipEvaluation eval = evaluator.Evaluate(
        c, kcrit_objects, kcrit_action,
        base.short_circuit && !probe);
    result.clip_indicator[static_cast<size_t>(c)] = eval.positive;
    ++result.clips_processed;

    // Feed the background estimators according to the update policy.
    const bool clip_gate =
        options_.update_policy == UpdatePolicy::kAllClips ||
        options_.update_policy == UpdatePolicy::kSelfExcluding ||
        (options_.update_policy == UpdatePolicy::kNegativeClipsOnly &&
         !eval.positive) ||
        (options_.update_policy == UpdatePolicy::kPositiveClipsOnly &&
         eval.positive);
    if (clip_gate) {
      const bool self_excluding =
          options_.update_policy == UpdatePolicy::kSelfExcluding;
      for (size_t i = 0; i < objects.size(); ++i) {
        if (!eval.ObjectEvaluated(i)) continue;
        if (self_excluding &&
            8 * eval.object_counts[i] >= eval.frames_in_clip) {
          continue;  // Predicate plainly satisfied: not background.
        }
        objects[i].estimator.ObserveBatch(eval.frames_in_clip,
                                          eval.object_counts[i]);
        objects[i].ObserveCount(eval.object_counts[i], eval.frames_in_clip);
        objects[i].MaybeRecompute(options_.recompute_rel_tol);
      }
      if (action != nullptr && eval.ActionEvaluated()) {
        if (!(self_excluding &&
              8 * eval.action_count >= eval.shots_in_clip)) {
          action->estimator.ObserveBatch(eval.shots_in_clip,
                                         eval.action_count);
          action->ObserveCount(eval.action_count, eval.shots_in_clip);
          action->MaybeRecompute(options_.recompute_rel_tol);
        }
      }
    }
  }

  result.sequences = IntervalSet::FromIndicators(result.clip_indicator);
  result.kcrit_objects.resize(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    result.kcrit_objects[i] = objects[i].kcrit;
  }
  result.kcrit_action = action != nullptr ? action->kcrit : 0;
  if (detector != nullptr) result.detector_stats = detector->stats();
  if (recognizer != nullptr) result.recognizer_stats = recognizer->stats();
  result.algorithm_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace online
}  // namespace vaq
