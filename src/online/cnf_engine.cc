#include "online/cnf_engine.h"

#include <chrono>
#include <cmath>

#include "ckpt/serializer.h"
#include "common/logging.h"
#include "online/state_codec.h"
#include "scanstat/critical_value.h"
#include "scanstat/kernel_estimator.h"

namespace vaq {
namespace online {
namespace {

// Background estimation and critical-value state of one distinct literal.
struct LiteralState {
  Literal literal;
  scanstat::KernelRateEstimator estimator;
  scanstat::ScanConfig config;
  double p_at_last_compute = -1.0;
  int64_t kcrit = 0;

  LiteralState(Literal lit, double bandwidth, double prior_p,
               double prior_weight, scanstat::ScanConfig cfg)
      : literal(lit), estimator(bandwidth, prior_p, prior_weight),
        config(cfg) {
    Recompute();
  }

  void Recompute() {
    p_at_last_compute = estimator.rate();
    kcrit = scanstat::CriticalValue(p_at_last_compute, config);
  }

  void MaybeRecompute(double rel_tol) {
    const double p = estimator.rate();
    const double ref = std::max(p_at_last_compute, 1e-12);
    if (rel_tol <= 0.0 || std::fabs(p - p_at_last_compute) / ref > rel_tol) {
      Recompute();
    }
  }
};

// Record tags of the CnfStream snapshot blob (append-only within a
// ckpt::kFormatVersion).
enum CnfTag : uint32_t {
  kTagMeta = 1,
  kTagSequences = 2,
  kTagLiteral = 3,
};

}  // namespace

struct CnfStream::Impl {
  std::vector<LiteralState> states;
  // Clause literals resolved to state indices.
  std::vector<std::vector<size_t>> clause_states;
  bool needs_detector = false;
  bool needs_recognizer = false;
  // Per-clip literal count cache (-1 = not evaluated this clip).
  std::vector<int64_t> counts;
  std::vector<int64_t> frames_in;
};

CnfStream::CnfStream(CnfQuery query, VideoLayout layout,
                     CnfEngineOptions options)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)),
      impl_(std::make_unique<Impl>()) {
  VAQ_CHECK(!query_.empty());
  const SvaqOptions& base = options_.svaqd.base;
  const std::vector<Literal> literals = query_.DistinctLiterals();
  impl_->states.reserve(literals.size());
  for (const Literal& literal : literals) {
    if (literal.kind == Literal::Kind::kObject) {
      impl_->needs_detector = true;
      impl_->states.emplace_back(literal, options_.svaqd.bandwidth_frames,
                                 base.p0_object, options_.svaqd.prior_weight,
                                 ObjectScanConfig(layout_, base));
    } else {
      impl_->needs_recognizer = true;
      impl_->states.emplace_back(literal, options_.svaqd.bandwidth_shots,
                                 base.p0_action, options_.svaqd.prior_weight,
                                 ActionScanConfig(layout_, base));
    }
  }
  impl_->clause_states.resize(query_.clauses.size());
  for (size_t c = 0; c < query_.clauses.size(); ++c) {
    for (const Literal& literal : query_.clauses[c].literals) {
      for (size_t s = 0; s < literals.size(); ++s) {
        if (literals[s] == literal) {
          impl_->clause_states[c].push_back(s);
          break;
        }
      }
    }
  }
  impl_->counts.resize(impl_->states.size());
  impl_->frames_in.resize(impl_->states.size());
}

CnfStream::~CnfStream() = default;

StatusOr<bool> CnfStream::PushClip(detect::ObjectDetector* detector,
                                   detect::ActionRecognizer* recognizer) {
  if (finished_) {
    return Status::FailedPrecondition("PushClip after Finish");
  }
  if (next_clip_ >= layout_.NumClips()) {
    return Status::OutOfRange(
        "stream exceeds the layout's design horizon of " +
        std::to_string(layout_.NumClips()) + " clips");
  }
  if (impl_->needs_detector && detector == nullptr) {
    return Status::InvalidArgument("CNF query with object literals "
                                   "requires a detector");
  }
  if (impl_->needs_recognizer && recognizer == nullptr) {
    return Status::InvalidArgument("CNF query with action literals "
                                   "requires a recognizer");
  }
  const ClipIndex clip = next_clip_++;
  std::vector<int64_t>& counts = impl_->counts;
  std::vector<int64_t>& frames_in = impl_->frames_in;
  std::vector<LiteralState>& states = impl_->states;

  auto evaluate_literal = [&](size_t s) {
    if (counts[s] >= 0) return;  // Cached for this clip.
    const LiteralState& state = states[s];
    int64_t count = 0;
    int64_t units = 0;
    if (state.literal.kind == Literal::Kind::kObject) {
      const Interval frames = layout_.ClipFrameRange(clip);
      units = frames.length();
      for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
        if (detector->IsPositive(state.literal.type, v)) ++count;
      }
    } else {
      const Interval shots = layout_.ClipShotRange(clip);
      units = shots.length();
      for (ShotIndex sh = shots.lo; sh <= shots.hi; ++sh) {
        if (recognizer->IsPositive(state.literal.type, sh)) ++count;
      }
    }
    counts[s] = count;
    frames_in[s] = units;
  };

  std::fill(counts.begin(), counts.end(), int64_t{-1});
  const bool probe = options_.svaqd.probe_period > 0 &&
                     clip % options_.svaqd.probe_period == 0;
  const bool short_circuit = options_.svaqd.base.short_circuit && !probe;

  bool all_clauses = true;
  for (size_t c = 0; c < impl_->clause_states.size(); ++c) {
    bool clause_fired = false;
    for (size_t s : impl_->clause_states[c]) {
      evaluate_literal(s);
      if (counts[s] >= states[s].kcrit) {
        clause_fired = true;
        if (short_circuit) break;  // OR short-circuit.
      }
    }
    if (!clause_fired) {
      all_clauses = false;
      if (short_circuit) break;  // AND short-circuit.
    }
  }
  if (probe) {
    // Probing evaluates every literal so all estimators stay fed.
    for (size_t s = 0; s < states.size(); ++s) evaluate_literal(s);
  }

  if (options_.adaptive) {
    // Self-excluding background updates, as in SVAQD.
    for (size_t s = 0; s < states.size(); ++s) {
      if (counts[s] < 0) continue;
      if (8 * counts[s] >= frames_in[s]) continue;  // Plainly satisfied.
      states[s].estimator.ObserveBatch(frames_in[s], counts[s]);
      states[s].MaybeRecompute(options_.svaqd.recompute_rel_tol);
    }
  }

  // Incremental sequence maintenance.
  if (all_clauses) {
    if (open_start_ < 0) open_start_ = clip;
  } else if (open_start_ >= 0) {
    sequences_.Add(Interval(open_start_, clip - 1));
    open_start_ = -1;
  }
  return all_clauses;
}

void CnfStream::Finish() {
  if (finished_) return;
  finished_ = true;
  if (open_start_ >= 0) {
    sequences_.Add(Interval(open_start_, next_clip_ - 1));
    open_start_ = -1;
  }
}

std::vector<Literal> CnfStream::literals() const {
  std::vector<Literal> out;
  out.reserve(impl_->states.size());
  for (const LiteralState& s : impl_->states) out.push_back(s.literal);
  return out;
}

std::vector<int64_t> CnfStream::kcrit() const {
  std::vector<int64_t> out;
  out.reserve(impl_->states.size());
  for (const LiteralState& s : impl_->states) out.push_back(s.kcrit);
  return out;
}

std::string CnfStream::SnapshotState() const {
  ckpt::Serializer out;
  {
    ckpt::Payload meta;
    meta.PutI64(next_clip_);
    meta.PutI64(open_start_);
    meta.PutBool(finished_);
    meta.PutU32(static_cast<uint32_t>(impl_->states.size()));
    out.Append(kTagMeta, meta);
  }
  {
    ckpt::Payload seqs;
    internal_online::EncodeIntervalSet(sequences_, &seqs);
    out.Append(kTagSequences, seqs);
  }
  for (size_t s = 0; s < impl_->states.size(); ++s) {
    const LiteralState& state = impl_->states[s];
    ckpt::Payload p;
    p.PutU32(static_cast<uint32_t>(s));
    internal_online::EncodeEstimator(state.estimator, &p);
    p.PutF64(state.p_at_last_compute);
    p.PutI64(state.kcrit);
    out.Append(kTagLiteral, p);
  }
  return out.blob();
}

Status CnfStream::RestoreState(const std::string& blob) {
  if (next_clip_ != 0 || finished_) {
    return Status::FailedPrecondition(
        "RestoreState requires a fresh CnfStream");
  }
  auto records = ckpt::ParseBlob(blob);
  if (!records.ok()) return records.status();
  bool saw_meta = false;
  for (const ckpt::Record& record : records.value()) {
    ckpt::PayloadReader in(record.payload);
    switch (record.tag) {
      case kTagMeta: {
        int64_t next_clip = 0, open_start = 0;
        bool finished = false;
        uint32_t n_literals = 0;
        VAQ_RETURN_IF_ERROR(in.GetI64(&next_clip));
        VAQ_RETURN_IF_ERROR(in.GetI64(&open_start));
        VAQ_RETURN_IF_ERROR(in.GetBool(&finished));
        VAQ_RETURN_IF_ERROR(in.GetU32(&n_literals));
        if (n_literals != impl_->states.size()) {
          return Status::InvalidArgument(
              "checkpoint does not match this CNF query's literal count");
        }
        next_clip_ = next_clip;
        open_start_ = open_start;
        finished_ = finished;
        saw_meta = true;
        break;
      }
      case kTagSequences:
        VAQ_RETURN_IF_ERROR(
            internal_online::DecodeIntervalSet(&in, &sequences_));
        break;
      case kTagLiteral: {
        uint32_t index = 0;
        VAQ_RETURN_IF_ERROR(in.GetU32(&index));
        if (index >= impl_->states.size()) {
          return Status::Corruption("CNF literal index out of range");
        }
        LiteralState& state = impl_->states[index];
        VAQ_RETURN_IF_ERROR(
            internal_online::DecodeEstimator(&in, &state.estimator));
        VAQ_RETURN_IF_ERROR(in.GetF64(&state.p_at_last_compute));
        VAQ_RETURN_IF_ERROR(in.GetI64(&state.kcrit));
        break;
      }
      default:
        break;  // Unknown record from a newer writer: skip.
    }
  }
  if (!saw_meta) {
    return Status::Corruption("CNF checkpoint missing meta record");
  }
  return Status::OK();
}

CnfEngine::CnfEngine(CnfQuery query, VideoLayout layout,
                     CnfEngineOptions options)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)) {
  VAQ_CHECK(!query_.empty());
}

CnfResult CnfEngine::Run(detect::ObjectDetector* detector,
                         detect::ActionRecognizer* recognizer) const {
  const auto start = std::chrono::steady_clock::now();
  const detect::ModelStats detector_stats_before =
      detector != nullptr ? detector->stats() : detect::ModelStats();
  const detect::ModelStats recognizer_stats_before =
      recognizer != nullptr ? recognizer->stats() : detect::ModelStats();

  CnfStream stream(query_, layout_, options_);
  CnfResult result;
  result.literals = stream.literals();
  const int64_t num_clips = layout_.NumClips();
  result.clip_indicator.resize(static_cast<size_t>(num_clips), false);
  for (ClipIndex clip = 0; clip < num_clips; ++clip) {
    const StatusOr<bool> indicator = stream.PushClip(detector, recognizer);
    VAQ_CHECK(indicator.ok()) << indicator.status();
    result.clip_indicator[static_cast<size_t>(clip)] = indicator.value();
    ++result.clips_processed;
  }
  stream.Finish();

  result.sequences = IntervalSet::FromIndicators(result.clip_indicator);
  result.kcrit = stream.kcrit();
  // Per-run deltas, so stats stay per-query when a model bundle is shared
  // across successive runs (the serving layer's shared detection cache).
  if (detector != nullptr) {
    result.detector_stats = detector->stats() - detector_stats_before;
  }
  if (recognizer != nullptr) {
    result.recognizer_stats = recognizer->stats() - recognizer_stats_before;
  }
  result.algorithm_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace online
}  // namespace vaq
