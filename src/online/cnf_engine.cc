#include "online/cnf_engine.h"

#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "scanstat/critical_value.h"
#include "scanstat/kernel_estimator.h"

namespace vaq {
namespace online {
namespace {

// Background estimation and critical-value state of one distinct literal.
struct LiteralState {
  Literal literal;
  scanstat::KernelRateEstimator estimator;
  scanstat::ScanConfig config;
  double p_at_last_compute = -1.0;
  int64_t kcrit = 0;

  LiteralState(Literal lit, double bandwidth, double prior_p,
               double prior_weight, scanstat::ScanConfig cfg)
      : literal(lit), estimator(bandwidth, prior_p, prior_weight),
        config(cfg) {
    Recompute();
  }

  void Recompute() {
    p_at_last_compute = estimator.rate();
    kcrit = scanstat::CriticalValue(p_at_last_compute, config);
  }

  void MaybeRecompute(double rel_tol) {
    const double p = estimator.rate();
    const double ref = std::max(p_at_last_compute, 1e-12);
    if (rel_tol <= 0.0 || std::fabs(p - p_at_last_compute) / ref > rel_tol) {
      Recompute();
    }
  }
};

}  // namespace

CnfEngine::CnfEngine(CnfQuery query, VideoLayout layout,
                     CnfEngineOptions options)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)) {
  VAQ_CHECK(!query_.empty());
}

CnfResult CnfEngine::Run(detect::ObjectDetector* detector,
                         detect::ActionRecognizer* recognizer) const {
  const auto start = std::chrono::steady_clock::now();
  const detect::ModelStats detector_stats_before =
      detector != nullptr ? detector->stats() : detect::ModelStats();
  const detect::ModelStats recognizer_stats_before =
      recognizer != nullptr ? recognizer->stats() : detect::ModelStats();
  const SvaqOptions& base = options_.svaqd.base;

  // Distinct literals with their estimators.
  const std::vector<Literal> literals = query_.DistinctLiterals();
  std::vector<LiteralState> states;
  states.reserve(literals.size());
  for (const Literal& literal : literals) {
    if (literal.kind == Literal::Kind::kObject) {
      VAQ_CHECK(detector != nullptr);
      states.emplace_back(literal, options_.svaqd.bandwidth_frames,
                          base.p0_object, options_.svaqd.prior_weight,
                          ObjectScanConfig(layout_, base));
    } else {
      VAQ_CHECK(recognizer != nullptr);
      states.emplace_back(literal, options_.svaqd.bandwidth_shots,
                          base.p0_action, options_.svaqd.prior_weight,
                          ActionScanConfig(layout_, base));
    }
  }
  // Clause literals resolved to state indices.
  std::vector<std::vector<size_t>> clause_states(query_.clauses.size());
  for (size_t c = 0; c < query_.clauses.size(); ++c) {
    for (const Literal& literal : query_.clauses[c].literals) {
      for (size_t s = 0; s < literals.size(); ++s) {
        if (literals[s] == literal) {
          clause_states[c].push_back(s);
          break;
        }
      }
    }
  }

  CnfResult result;
  result.literals = literals;
  const int64_t num_clips = layout_.NumClips();
  result.clip_indicator.resize(static_cast<size_t>(num_clips), false);

  // Per-clip literal count cache (-1 = not evaluated this clip).
  std::vector<int64_t> counts(literals.size());
  std::vector<int64_t> frames_in(literals.size());

  auto evaluate_literal = [&](size_t s, ClipIndex clip) {
    if (counts[s] >= 0) return;  // Cached for this clip.
    const LiteralState& state = states[s];
    int64_t count = 0;
    int64_t units = 0;
    if (state.literal.kind == Literal::Kind::kObject) {
      const Interval frames = layout_.ClipFrameRange(clip);
      units = frames.length();
      for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
        if (detector->IsPositive(state.literal.type, v)) ++count;
      }
    } else {
      const Interval shots = layout_.ClipShotRange(clip);
      units = shots.length();
      for (ShotIndex sh = shots.lo; sh <= shots.hi; ++sh) {
        if (recognizer->IsPositive(state.literal.type, sh)) ++count;
      }
    }
    counts[s] = count;
    frames_in[s] = units;
  };

  for (ClipIndex clip = 0; clip < num_clips; ++clip) {
    std::fill(counts.begin(), counts.end(), int64_t{-1});
    const bool probe = options_.svaqd.probe_period > 0 &&
                       clip % options_.svaqd.probe_period == 0;
    const bool short_circuit = base.short_circuit && !probe;

    bool all_clauses = true;
    for (size_t c = 0; c < clause_states.size(); ++c) {
      bool clause_fired = false;
      for (size_t s : clause_states[c]) {
        evaluate_literal(s, clip);
        if (counts[s] >= states[s].kcrit) {
          clause_fired = true;
          if (short_circuit) break;  // OR short-circuit.
        }
      }
      if (!clause_fired) {
        all_clauses = false;
        if (short_circuit) break;  // AND short-circuit.
      }
    }
    if (probe) {
      // Probing evaluates every literal so all estimators stay fed.
      for (size_t s = 0; s < states.size(); ++s) evaluate_literal(s, clip);
    }
    result.clip_indicator[static_cast<size_t>(clip)] = all_clauses;
    ++result.clips_processed;

    if (!options_.adaptive) continue;
    // Self-excluding background updates, as in SVAQD.
    for (size_t s = 0; s < states.size(); ++s) {
      if (counts[s] < 0) continue;
      if (8 * counts[s] >= frames_in[s]) continue;  // Plainly satisfied.
      states[s].estimator.ObserveBatch(frames_in[s], counts[s]);
      states[s].MaybeRecompute(options_.svaqd.recompute_rel_tol);
    }
  }

  result.sequences = IntervalSet::FromIndicators(result.clip_indicator);
  result.kcrit.resize(states.size());
  for (size_t s = 0; s < states.size(); ++s) result.kcrit[s] = states[s].kcrit;
  // Per-run deltas, so stats stay per-query when a model bundle is shared
  // across successive runs (the serving layer's shared detection cache).
  if (detector != nullptr) {
    result.detector_stats = detector->stats() - detector_stats_before;
  }
  if (recognizer != nullptr) {
    result.recognizer_stats = recognizer->stats() - recognizer_stats_before;
  }
  result.algorithm_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace online
}  // namespace vaq
