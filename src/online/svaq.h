// Algorithm SVAQ (§3.1): streaming video action queries with static
// critical values derived from a fixed background probability via scan
// statistics (Eq. 5).
#ifndef VAQ_ONLINE_SVAQ_H_
#define VAQ_ONLINE_SVAQ_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "detect/models.h"
#include "online/clip_evaluator.h"
#include "scanstat/critical_value.h"
#include "video/layout.h"
#include "video/query_spec.h"

namespace vaq {
namespace online {

// Options shared by SVAQ and SVAQD.
struct SvaqOptions {
  // Significance level of Eq. 5.
  double alpha = 0.01;
  // Initial background probability of positive object predictions per
  // frame (one value for all object predicates; §3.2 allows per-predicate
  // values — use `p0_per_object` to override).
  double p0_object = 1e-3;
  // Initial background probability of positive action predictions per shot.
  double p0_action = 1e-3;
  // Optional per-object-predicate overrides (empty = use p0_object).
  std::vector<double> p0_per_object;
  // Design horizon in frames for the scan-statistic length L = N/w; 0
  // means "use the video length" (streaming callers should set their
  // expected stream length).
  int64_t horizon_frames = 0;
  // Evaluate predicates sequentially and skip the rest of a clip after the
  // first negative predicate (Algorithm 2 lines 6-8).
  bool short_circuit = true;
};

// Result of running an online algorithm over a (finite prefix of a)
// stream.
struct OnlineResult {
  // The result sequences P_q = {(c_l, c_r)} of Eq. 4, clip granularity.
  IntervalSet sequences;
  // Per-clip query indicator 1_q^(c).
  std::vector<bool> clip_indicator;
  int64_t clips_processed = 0;
  // Final critical values (SVAQD mutates them as the stream evolves).
  std::vector<int64_t> kcrit_objects;
  int64_t kcrit_action = 0;
  // Model invocation accounting for the §5.2 runtime analysis.
  detect::ModelStats detector_stats;
  detect::ModelStats recognizer_stats;
  // Degradation accounting (nonzero only under fault injection): clips
  // with at least one missing observation, and clips lost wholesale.
  int64_t degraded_clips = 0;
  int64_t dropped_clips = 0;
  // Wall-clock time spent in the algorithm itself (excludes the simulated
  // inference cost, which is detector_stats/recognizer_stats.simulated_ms).
  double algorithm_wall_ms = 0.0;
};

// SVAQ: static critical values from the initial background probabilities
// (Algorithm 1).
class Svaq {
 public:
  Svaq(QuerySpec query, VideoLayout layout, SvaqOptions options);

  // Processes every clip of the bound video in stream order.
  OnlineResult Run(detect::ObjectDetector* detector,
                   detect::ActionRecognizer* recognizer) const;

  const SvaqOptions& options() const { return options_; }

  // Critical values implied by the options (computed once, before the
  // stream starts). Exposed for tests and diagnostics.
  std::vector<int64_t> InitialObjectCriticalValues() const;
  int64_t InitialActionCriticalValue() const;

 private:
  QuerySpec query_;
  VideoLayout layout_;
  SvaqOptions options_;
};

// Scan-statistic configuration for an object predicate of a query over
// `layout` (window = frames per clip, horizon in frames).
scanstat::ScanConfig ObjectScanConfig(const VideoLayout& layout,
                                      const SvaqOptions& options);
// Scan-statistic configuration for the action predicate (window = shots
// per clip, horizon in shots).
scanstat::ScanConfig ActionScanConfig(const VideoLayout& layout,
                                      const SvaqOptions& options);

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_SVAQ_H_
