#include "online/streaming.h"

#include "common/logging.h"
#include "online/clip_evaluator.h"
#include "online/predicate_state.h"

namespace vaq {
namespace online {

using internal_online::PredicateState;

// All per-predicate adaptive state, mirroring Svaqd::Run's locals.
struct StreamingSvaqd::State {
  std::vector<PredicateState> objects;
  std::unique_ptr<PredicateState> action;
};

StreamingSvaqd::StreamingSvaqd(QuerySpec query, VideoLayout layout,
                               SvaqdOptions options, Callback callback)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)),
      callback_(std::move(callback)),
      state_(std::make_unique<State>()) {
  const SvaqOptions& base = options_.base;
  if (!base.p0_per_object.empty()) {
    VAQ_CHECK_EQ(base.p0_per_object.size(), query_.objects.size());
  }
  const scanstat::ScanConfig object_config = ObjectScanConfig(layout_, base);
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const double p0 =
        base.p0_per_object.empty() ? base.p0_object : base.p0_per_object[i];
    state_->objects.emplace_back(options_.bandwidth_frames, p0,
                                 options_.prior_weight, object_config,
                                 options_.burst_aware);
  }
  if (query_.has_action()) {
    state_->action = std::make_unique<PredicateState>(
        options_.bandwidth_shots, base.p0_action, options_.prior_weight,
        ActionScanConfig(layout_, base), options_.burst_aware);
  }
}

StreamingSvaqd::~StreamingSvaqd() = default;

bool StreamingSvaqd::PushClip(detect::ObjectDetector* detector,
                              detect::ActionRecognizer* recognizer) {
  VAQ_CHECK(!finished_) << "PushClip after Finish";
  VAQ_CHECK_LT(next_clip_, layout_.NumClips())
      << "stream exceeds the layout's design horizon";
  const ClipIndex clip = next_clip_++;
  const SvaqOptions& base = options_.base;

  ClipEvaluator evaluator(query_, layout_, detector, recognizer);
  std::vector<int64_t> kcrit_objects(state_->objects.size());
  for (size_t i = 0; i < state_->objects.size(); ++i) {
    kcrit_objects[i] = state_->objects[i].kcrit;
  }
  const int64_t kcrit_action =
      state_->action != nullptr ? state_->action->kcrit : 0;
  const bool probe =
      options_.probe_period > 0 && clip % options_.probe_period == 0;
  const ClipEvaluation eval = evaluator.Evaluate(
      clip, kcrit_objects, kcrit_action, base.short_circuit && !probe);

  // Background updates, identical to Svaqd::Run.
  const bool clip_gate =
      options_.update_policy == UpdatePolicy::kAllClips ||
      options_.update_policy == UpdatePolicy::kSelfExcluding ||
      (options_.update_policy == UpdatePolicy::kNegativeClipsOnly &&
       !eval.positive) ||
      (options_.update_policy == UpdatePolicy::kPositiveClipsOnly &&
       eval.positive);
  if (clip_gate) {
    const bool self_excluding =
        options_.update_policy == UpdatePolicy::kSelfExcluding;
    for (size_t i = 0; i < state_->objects.size(); ++i) {
      if (!eval.ObjectEvaluated(i)) continue;
      if (self_excluding &&
          8 * eval.object_counts[i] >= eval.frames_in_clip) {
        continue;
      }
      state_->objects[i].estimator.ObserveBatch(eval.frames_in_clip,
                                                eval.object_counts[i]);
      state_->objects[i].ObserveCount(eval.object_counts[i],
                                      eval.frames_in_clip);
      state_->objects[i].MaybeRecompute(options_.recompute_rel_tol);
    }
    if (state_->action != nullptr && eval.ActionEvaluated()) {
      if (!(self_excluding &&
            8 * eval.action_count >= eval.shots_in_clip)) {
        state_->action->estimator.ObserveBatch(eval.shots_in_clip,
                                               eval.action_count);
        state_->action->ObserveCount(eval.action_count, eval.shots_in_clip);
        state_->action->MaybeRecompute(options_.recompute_rel_tol);
      }
    }
  }

  // Incremental sequence maintenance + events.
  if (eval.positive) {
    if (open_start_ < 0) {
      open_start_ = clip;
      if (callback_) {
        callback_({SequenceEvent::Kind::kOpened, Interval(clip, clip), clip});
      }
    } else if (callback_) {
      callback_(
          {SequenceEvent::Kind::kExtended, Interval(open_start_, clip), clip});
    }
  } else if (open_start_ >= 0) {
    const Interval closed(open_start_, clip - 1);
    sequences_.Add(closed);
    open_start_ = -1;
    if (callback_) {
      callback_({SequenceEvent::Kind::kClosed, closed, clip});
    }
  }
  return eval.positive;
}

void StreamingSvaqd::Finish() {
  if (finished_) return;
  finished_ = true;
  if (open_start_ >= 0) {
    const Interval closed(open_start_, next_clip_ - 1);
    sequences_.Add(closed);
    open_start_ = -1;
    if (callback_) {
      callback_({SequenceEvent::Kind::kClosed, closed, next_clip_ - 1});
    }
  }
}

}  // namespace online
}  // namespace vaq
