#include "online/streaming.h"

#include "ckpt/serializer.h"
#include "common/logging.h"
#include "fault/sim_clock.h"
#include "obs/metrics.h"
#include "online/clip_evaluator.h"
#include "online/predicate_state.h"
#include "online/state_codec.h"

namespace vaq {
namespace online {

using internal_online::PredicateState;

// All per-predicate adaptive state, mirroring Svaqd::Run's locals, plus
// the resilience state (clock, wrappers) which must persist across
// PushClip calls so retries/breaker/backoff evolve exactly as in a batch
// run.
struct StreamingSvaqd::State {
  std::vector<PredicateState> objects;
  std::unique_ptr<PredicateState> action;

  fault::SimClock clock;
  std::unique_ptr<detect::ResilientObjectDetector> rdetector;
  std::unique_ptr<detect::ResilientActionRecognizer> rrecognizer;

  // Retry/breaker state restored from a checkpoint before the wrappers
  // exist (they bind lazily to the model instances of the first
  // PushClip); applied at wrapper creation.
  bool has_pending_det_core = false;
  bool has_pending_rec_core = false;
  detect::internal_detect::ResilientCore::State pending_det_core;
  detect::internal_detect::ResilientCore::State pending_rec_core;

  // Registry mirrors, resolved once per engine instance. Events are
  // counted where they logically occur, whether or not a callback is
  // installed.
  obs::Counter* metric_clips = nullptr;
  obs::Counter* metric_event_opened = nullptr;
  obs::Counter* metric_event_extended = nullptr;
  obs::Counter* metric_event_closed = nullptr;
  obs::Counter* metric_event_gap = nullptr;
  obs::Gauge* metric_open_len = nullptr;  // Open-sequence backlog, clips.
};

StreamingSvaqd::StreamingSvaqd(QuerySpec query, VideoLayout layout,
                               SvaqdOptions options, Callback callback)
    : query_(std::move(query)),
      layout_(layout),
      options_(std::move(options)),
      callback_(std::move(callback)),
      state_(std::make_unique<State>()) {
  const SvaqOptions& base = options_.base;
  if (!base.p0_per_object.empty()) {
    VAQ_CHECK_EQ(base.p0_per_object.size(), query_.objects.size());
  }
  const scanstat::ScanConfig object_config = ObjectScanConfig(layout_, base);
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const double p0 =
        base.p0_per_object.empty() ? base.p0_object : base.p0_per_object[i];
    state_->objects.emplace_back(options_.bandwidth_frames, p0,
                                 options_.prior_weight, object_config,
                                 options_.burst_aware);
  }
  if (query_.has_action()) {
    state_->action = std::make_unique<PredicateState>(
        options_.bandwidth_shots, base.p0_action, options_.prior_weight,
        ActionScanConfig(layout_, base), options_.burst_aware);
  }

  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  state_->metric_clips = registry.GetCounter("vaq_clips_processed_total",
                                             {{"engine", "streaming_svaqd"}});
  const auto event_counter = [&](const char* kind) {
    return registry.GetCounter("vaq_stream_events_total", {{"kind", kind}});
  };
  state_->metric_event_opened = event_counter("opened");
  state_->metric_event_extended = event_counter("extended");
  state_->metric_event_closed = event_counter("closed");
  state_->metric_event_gap = event_counter("gap");
  state_->metric_open_len =
      registry.GetGauge("vaq_stream_open_sequence_clips");
}

StreamingSvaqd::~StreamingSvaqd() = default;

StatusOr<bool> StreamingSvaqd::PushClip(detect::ObjectDetector* detector,
                                        detect::ActionRecognizer* recognizer) {
  if (finished_) {
    return Status::FailedPrecondition("PushClip after Finish");
  }
  if (next_clip_ >= layout_.NumClips()) {
    return Status::OutOfRange(
        "stream exceeds the layout's design horizon of " +
        std::to_string(layout_.NumClips()) + " clips");
  }
  const ClipIndex clip = next_clip_++;
  const SvaqOptions& base = options_.base;
  const fault::FaultPlan* plan = options_.fault_plan;

  ClipEvaluator evaluator(query_, layout_, detector, recognizer);
  std::vector<int64_t> kcrit_objects(state_->objects.size());
  for (size_t i = 0; i < state_->objects.size(); ++i) {
    kcrit_objects[i] = state_->objects[i].kcrit;
  }
  const int64_t kcrit_action =
      state_->action != nullptr ? state_->action->kcrit : 0;
  const bool probe =
      options_.probe_period > 0 && clip % options_.probe_period == 0;

  ClipEvaluation eval;
  if (plan != nullptr) {
    state_->clock.Advance(options_.resilience.clip_interval_ms);
    // The wrappers are bound to the models seen on the first push; the
    // retry nonces and breaker state are meaningless across instances.
    if (detector != nullptr) {
      if (state_->rdetector == nullptr) {
        state_->rdetector = std::make_unique<detect::ResilientObjectDetector>(
            detector, plan, options_.resilience, &state_->clock);
        if (state_->has_pending_det_core) {
          state_->rdetector->set_core_state(state_->pending_det_core);
          state_->has_pending_det_core = false;
        }
      } else if (state_->rdetector->inner() != detector) {
        return Status::InvalidArgument(
            "PushClip called with a different detector instance");
      }
    }
    if (recognizer != nullptr) {
      if (state_->rrecognizer == nullptr) {
        state_->rrecognizer =
            std::make_unique<detect::ResilientActionRecognizer>(
                recognizer, plan, options_.resilience, &state_->clock);
        if (state_->has_pending_rec_core) {
          state_->rrecognizer->set_core_state(state_->pending_rec_core);
          state_->has_pending_rec_core = false;
        }
      } else if (state_->rrecognizer->inner() != recognizer) {
        return Status::InvalidArgument(
            "PushClip called with a different recognizer instance");
      }
    }
    std::vector<double> object_fallback(state_->objects.size(), 0.0);
    for (size_t i = 0; i < state_->objects.size(); ++i) {
      object_fallback[i] = internal_online::FallbackRate(
          options_.missing_policy, state_->objects[i]);
    }
    const double action_fallback =
        state_->action != nullptr
            ? internal_online::FallbackRate(options_.missing_policy,
                                            *state_->action)
            : 0.0;
    eval = evaluator.EvaluateResilient(
        clip, kcrit_objects, kcrit_action, base.short_circuit && !probe,
        state_->rdetector.get(), state_->rrecognizer.get(), plan,
        object_fallback, action_fallback);
  } else {
    eval = evaluator.Evaluate(clip, kcrit_objects, kcrit_action,
                              base.short_circuit && !probe);
  }
  state_->metric_clips->Increment();
  if (eval.Degraded()) {
    ++degraded_clips_;
    state_->metric_event_gap->Increment();
    if (callback_) {
      callback_({SequenceEvent::Kind::kGap, Interval(clip, clip), clip});
    }
  }
  if (eval.dropped) ++dropped_clips_;

  // Background updates, identical to Svaqd::Run.
  internal_online::UpdateAdaptiveState(options_, eval, &state_->objects,
                                       state_->action.get());

  // Incremental sequence maintenance + events.
  if (eval.positive) {
    if (open_start_ < 0) {
      open_start_ = clip;
      state_->metric_event_opened->Increment();
      if (callback_) {
        callback_({SequenceEvent::Kind::kOpened, Interval(clip, clip), clip});
      }
    } else {
      state_->metric_event_extended->Increment();
      if (callback_) {
        callback_({SequenceEvent::Kind::kExtended, Interval(open_start_, clip),
                   clip});
      }
    }
  } else if (open_start_ >= 0) {
    const Interval closed(open_start_, clip - 1);
    sequences_.Add(closed);
    open_start_ = -1;
    state_->metric_event_closed->Increment();
    if (callback_) {
      callback_({SequenceEvent::Kind::kClosed, closed, clip});
    }
  }
  state_->metric_open_len->Set(
      open_start_ >= 0 ? static_cast<double>(clip - open_start_ + 1) : 0.0);
  return eval.positive;
}

StatusOr<bool> StreamingSvaqd::PushPrunedClip() {
  if (finished_) {
    return Status::FailedPrecondition("PushClip after Finish");
  }
  if (next_clip_ >= layout_.NumClips()) {
    return Status::OutOfRange(
        "stream exceeds the layout's design horizon of " +
        std::to_string(layout_.NumClips()) + " clips");
  }
  const ClipIndex clip = next_clip_++;
  if (options_.fault_plan != nullptr) {
    // Keep virtual time on the clip cadence so the resilience wrappers'
    // breaker/backoff windows line up with the clips that DO run models.
    state_->clock.Advance(options_.resilience.clip_interval_ms);
  }
  if (open_start_ >= 0) {
    const Interval closed(open_start_, clip - 1);
    sequences_.Add(closed);
    open_start_ = -1;
    state_->metric_event_closed->Increment();
    if (callback_) {
      callback_({SequenceEvent::Kind::kClosed, closed, clip});
    }
  }
  state_->metric_open_len->Set(0.0);
  return false;
}

namespace {

// Record tags of the StreamingSvaqd snapshot blob (append-only within a
// ckpt::kFormatVersion).
enum StreamingTag : uint32_t {
  kTagMeta = 1,
  kTagSequences = 2,
  kTagObjectPredicate = 3,
  kTagActionPredicate = 4,
  kTagDetectorCore = 5,
  kTagRecognizerCore = 6,
};

}  // namespace

std::string StreamingSvaqd::SnapshotState() const {
  ckpt::Serializer out;
  {
    ckpt::Payload meta;
    meta.PutI64(next_clip_);
    meta.PutI64(open_start_);
    meta.PutBool(finished_);
    meta.PutI64(degraded_clips_);
    meta.PutI64(dropped_clips_);
    meta.PutF64(state_->clock.now_ms());
    meta.PutU32(static_cast<uint32_t>(state_->objects.size()));
    meta.PutBool(state_->action != nullptr);
    out.Append(kTagMeta, meta);
  }
  {
    ckpt::Payload seqs;
    internal_online::EncodeIntervalSet(sequences_, &seqs);
    out.Append(kTagSequences, seqs);
  }
  for (size_t i = 0; i < state_->objects.size(); ++i) {
    ckpt::Payload p;
    p.PutU32(static_cast<uint32_t>(i));
    internal_online::EncodePredicateState(state_->objects[i], &p);
    out.Append(kTagObjectPredicate, p);
  }
  if (state_->action != nullptr) {
    ckpt::Payload p;
    internal_online::EncodePredicateState(*state_->action, &p);
    out.Append(kTagActionPredicate, p);
  }
  if (state_->rdetector != nullptr) {
    ckpt::Payload p;
    internal_online::EncodeResilientCoreState(state_->rdetector->core_state(),
                                              &p);
    out.Append(kTagDetectorCore, p);
  }
  if (state_->rrecognizer != nullptr) {
    ckpt::Payload p;
    internal_online::EncodeResilientCoreState(
        state_->rrecognizer->core_state(), &p);
    out.Append(kTagRecognizerCore, p);
  }
  return out.blob();
}

Status StreamingSvaqd::RestoreState(const std::string& blob) {
  if (next_clip_ != 0 || finished_) {
    return Status::FailedPrecondition(
        "RestoreState requires a fresh StreamingSvaqd");
  }
  auto records = ckpt::ParseBlob(blob);
  if (!records.ok()) return records.status();
  bool saw_meta = false;
  for (const ckpt::Record& record : records.value()) {
    ckpt::PayloadReader in(record.payload);
    switch (record.tag) {
      case kTagMeta: {
        int64_t next_clip = 0, open_start = 0;
        bool finished = false;
        double clock_ms = 0.0;
        uint32_t n_objects = 0;
        bool has_action = false;
        VAQ_RETURN_IF_ERROR(in.GetI64(&next_clip));
        VAQ_RETURN_IF_ERROR(in.GetI64(&open_start));
        VAQ_RETURN_IF_ERROR(in.GetBool(&finished));
        VAQ_RETURN_IF_ERROR(in.GetI64(&degraded_clips_));
        VAQ_RETURN_IF_ERROR(in.GetI64(&dropped_clips_));
        VAQ_RETURN_IF_ERROR(in.GetF64(&clock_ms));
        VAQ_RETURN_IF_ERROR(in.GetU32(&n_objects));
        VAQ_RETURN_IF_ERROR(in.GetBool(&has_action));
        if (n_objects != state_->objects.size() ||
            has_action != (state_->action != nullptr)) {
          return Status::InvalidArgument(
              "checkpoint does not match this engine's query shape");
        }
        next_clip_ = next_clip;
        open_start_ = open_start;
        finished_ = finished;
        // A fresh SimClock starts at 0, so one Advance lands on the
        // saved value exactly (0.0 + x == x in IEEE-754).
        state_->clock.Advance(clock_ms);
        saw_meta = true;
        break;
      }
      case kTagSequences:
        VAQ_RETURN_IF_ERROR(
            internal_online::DecodeIntervalSet(&in, &sequences_));
        break;
      case kTagObjectPredicate: {
        uint32_t index = 0;
        VAQ_RETURN_IF_ERROR(in.GetU32(&index));
        if (index >= state_->objects.size()) {
          return Status::Corruption("object predicate index out of range");
        }
        VAQ_RETURN_IF_ERROR(internal_online::DecodePredicateState(
            &in, &state_->objects[index]));
        break;
      }
      case kTagActionPredicate:
        if (state_->action == nullptr) {
          return Status::Corruption("action predicate for actionless query");
        }
        VAQ_RETURN_IF_ERROR(
            internal_online::DecodePredicateState(&in, state_->action.get()));
        break;
      case kTagDetectorCore:
        VAQ_RETURN_IF_ERROR(internal_online::DecodeResilientCoreState(
            &in, &state_->pending_det_core));
        state_->has_pending_det_core = true;
        break;
      case kTagRecognizerCore:
        VAQ_RETURN_IF_ERROR(internal_online::DecodeResilientCoreState(
            &in, &state_->pending_rec_core));
        state_->has_pending_rec_core = true;
        break;
      default:
        break;  // Unknown record from a newer writer: skip.
    }
  }
  if (!saw_meta) {
    return Status::Corruption("streaming checkpoint missing meta record");
  }
  return Status::OK();
}

void StreamingSvaqd::Finish() {
  if (finished_) return;
  finished_ = true;
  if (open_start_ >= 0) {
    const Interval closed(open_start_, next_clip_ - 1);
    sequences_.Add(closed);
    open_start_ = -1;
    state_->metric_event_closed->Increment();
    state_->metric_open_len->Set(0.0);
    if (callback_) {
      callback_({SequenceEvent::Kind::kClosed, closed, next_clip_ - 1});
    }
  }
}

}  // namespace online
}  // namespace vaq
