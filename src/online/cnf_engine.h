// Streaming evaluation of CNF queries (§2, footnotes 3-4).
//
// Generalizes SVAQ/SVAQD from one conjunction to a conjunction of
// disjunctive clauses: per clip, a clause's indicator is the OR of its
// literals' scan-statistic indicators, and the clip satisfies the query
// when every clause fires. Evaluation short-circuits at both levels —
// within a clause, literals are evaluated until one fires; across
// clauses, a failed clause skips the rest of the clip.
//
// Each distinct literal carries its own critical value, either static
// from p0 (SVAQ-style) or maintained by a kernel background estimator
// (SVAQD-style), exactly as in the conjunctive engines.
#ifndef VAQ_ONLINE_CNF_ENGINE_H_
#define VAQ_ONLINE_CNF_ENGINE_H_

#include <vector>

#include "detect/models.h"
#include "online/svaqd.h"
#include "video/cnf_query.h"
#include "video/layout.h"

namespace vaq {
namespace online {

struct CnfEngineOptions {
  // Estimation / significance parameters (alpha, p0, bandwidths, gate,
  // probe period) are shared with the conjunctive SVAQD. The fault-
  // injection fields (fault_plan, resilience, missing_policy) are ignored
  // here: the CNF engine evaluates literals on the raw model path.
  SvaqdOptions svaqd;
  // false: keep the initial critical values for the whole stream
  // (SVAQ-style); true: adapt them online (SVAQD-style).
  bool adaptive = true;
};

// Result of a CNF run; sequences and indicator as in OnlineResult, plus
// the final critical value per distinct literal.
struct CnfResult {
  IntervalSet sequences;
  std::vector<bool> clip_indicator;
  int64_t clips_processed = 0;
  std::vector<Literal> literals;         // Distinct literals, engine order.
  std::vector<int64_t> kcrit;            // Final k_crit per literal.
  detect::ModelStats detector_stats;
  detect::ModelStats recognizer_stats;
  double algorithm_wall_ms = 0.0;
};

class CnfEngine {
 public:
  CnfEngine(CnfQuery query, VideoLayout layout, CnfEngineOptions options);

  // `detector` is required when any literal is an object, `recognizer`
  // when any literal is an action.
  CnfResult Run(detect::ObjectDetector* detector,
                detect::ActionRecognizer* recognizer) const;

  const CnfQuery& query() const { return query_; }

 private:
  CnfQuery query_;
  VideoLayout layout_;
  CnfEngineOptions options_;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_CNF_ENGINE_H_
