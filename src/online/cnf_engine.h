// Streaming evaluation of CNF queries (§2, footnotes 3-4).
//
// Generalizes SVAQ/SVAQD from one conjunction to a conjunction of
// disjunctive clauses: per clip, a clause's indicator is the OR of its
// literals' scan-statistic indicators, and the clip satisfies the query
// when every clause fires. Evaluation short-circuits at both levels —
// within a clause, literals are evaluated until one fires; across
// clauses, a failed clause skips the rest of the clip.
//
// Each distinct literal carries its own critical value, either static
// from p0 (SVAQ-style) or maintained by a kernel background estimator
// (SVAQD-style), exactly as in the conjunctive engines.
#ifndef VAQ_ONLINE_CNF_ENGINE_H_
#define VAQ_ONLINE_CNF_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "detect/models.h"
#include "online/svaqd.h"
#include "video/cnf_query.h"
#include "video/layout.h"

namespace vaq {
namespace online {

struct CnfEngineOptions {
  // Estimation / significance parameters (alpha, p0, bandwidths, gate,
  // probe period) are shared with the conjunctive SVAQD. The fault-
  // injection fields (fault_plan, resilience, missing_policy) are ignored
  // here: the CNF engine evaluates literals on the raw model path.
  SvaqdOptions svaqd;
  // false: keep the initial critical values for the whole stream
  // (SVAQ-style); true: adapt them online (SVAQD-style).
  bool adaptive = true;
};

// Result of a CNF run; sequences and indicator as in OnlineResult, plus
// the final critical value per distinct literal.
struct CnfResult {
  IntervalSet sequences;
  std::vector<bool> clip_indicator;
  int64_t clips_processed = 0;
  std::vector<Literal> literals;         // Distinct literals, engine order.
  std::vector<int64_t> kcrit;            // Final k_crit per literal.
  detect::ModelStats detector_stats;
  detect::ModelStats recognizer_stats;
  double algorithm_wall_ms = 0.0;
};

// Push-based incremental CNF evaluation: the streaming counterpart of
// CnfEngine::Run, one clip per PushClip call, maintaining result
// sequences as open/closed runs exactly like StreamingSvaqd. Feeding
// every clip of the layout through PushClip reproduces Run bit for bit
// (Run is implemented on top of this class). Checkpointable: see
// SnapshotState / RestoreState.
class CnfStream {
 public:
  CnfStream(CnfQuery query, VideoLayout layout, CnfEngineOptions options);
  ~CnfStream();

  CnfStream(const CnfStream&) = delete;
  CnfStream& operator=(const CnfStream&) = delete;

  // Evaluates the next clip; returns its CNF indicator. `detector` is
  // required when any literal is an object, `recognizer` when any is an
  // action. kFailedPrecondition after Finish(), kOutOfRange past the
  // layout's clip count.
  StatusOr<bool> PushClip(detect::ObjectDetector* detector,
                          detect::ActionRecognizer* recognizer);

  // Ends the stream, closing any open sequence.
  void Finish();

  ClipIndex next_clip() const { return next_clip_; }
  bool finished() const { return finished_; }
  // Sequences closed so far (plus the open one only after Finish()).
  const IntervalSet& sequences() const { return sequences_; }
  // Distinct literals in engine order / their current critical values.
  std::vector<Literal> literals() const;
  std::vector<int64_t> kcrit() const;

  // Complete mutable state as a ckpt::Serializer blob; restore on a
  // freshly constructed stream with identical (query, layout, options)
  // resumes the exact trajectory (see StreamingSvaqd::SnapshotState).
  std::string SnapshotState() const;
  Status RestoreState(const std::string& blob);

 private:
  struct Impl;  // Per-literal estimator/critical-value state (internal).

  CnfQuery query_;
  VideoLayout layout_;
  CnfEngineOptions options_;
  std::unique_ptr<Impl> impl_;
  IntervalSet sequences_;
  ClipIndex next_clip_ = 0;
  ClipIndex open_start_ = -1;  // Start of the currently open run, or -1.
  bool finished_ = false;
};

class CnfEngine {
 public:
  CnfEngine(CnfQuery query, VideoLayout layout, CnfEngineOptions options);

  // `detector` is required when any literal is an object, `recognizer`
  // when any literal is an action.
  CnfResult Run(detect::ObjectDetector* detector,
                detect::ActionRecognizer* recognizer) const;

  const CnfQuery& query() const { return query_; }

 private:
  CnfQuery query_;
  VideoLayout layout_;
  CnfEngineOptions options_;
};

}  // namespace online
}  // namespace vaq

#endif  // VAQ_ONLINE_CNF_ENGINE_H_
