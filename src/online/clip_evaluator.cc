#include "online/clip_evaluator.h"

#include "common/logging.h"

namespace vaq {
namespace online {

ClipEvaluator::ClipEvaluator(const QuerySpec& query, const VideoLayout& layout,
                             detect::ObjectDetector* detector,
                             detect::ActionRecognizer* recognizer)
    : query_(query),
      layout_(layout),
      detector_(detector),
      recognizer_(recognizer) {
  if (!query_.objects.empty()) {
    VAQ_CHECK(detector_ != nullptr);
  }
  if (query_.has_action()) {
    VAQ_CHECK(recognizer_ != nullptr);
  }
}

ClipEvaluation ClipEvaluator::Evaluate(
    ClipIndex clip, const std::vector<int64_t>& kcrit_objects,
    int64_t kcrit_action, bool short_circuit) const {
  VAQ_CHECK_EQ(kcrit_objects.size(), query_.objects.size());
  ClipEvaluation eval;
  eval.object_counts.assign(query_.objects.size(), -1);
  const Interval frames = layout_.ClipFrameRange(clip);
  const Interval shots = layout_.ClipShotRange(clip);
  eval.frames_in_clip = frames.length();
  eval.shots_in_clip = shots.length();

  bool all_positive = true;
  // Object predicates first, in query order (Algorithm 2, lines 1-8).
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const ObjectTypeId type = query_.objects[i];
    int64_t count = 0;
    for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
      if (detector_->IsPositive(type, v)) ++count;
    }
    eval.object_counts[i] = count;
    if (count < kcrit_objects[i]) {
      all_positive = false;
      if (short_circuit) {
        eval.positive = false;
        return eval;
      }
    }
  }
  // Action predicate (Algorithm 2, lines 9-12).
  if (query_.has_action()) {
    int64_t count = 0;
    for (ShotIndex s = shots.lo; s <= shots.hi; ++s) {
      if (recognizer_->IsPositive(query_.action, s)) ++count;
    }
    eval.action_count = count;
    if (count < kcrit_action) all_positive = false;
  }
  eval.positive = all_positive;
  return eval;
}

}  // namespace online
}  // namespace vaq
