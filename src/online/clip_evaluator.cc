#include "online/clip_evaluator.h"

#include "common/logging.h"

namespace vaq {
namespace online {

ClipEvaluator::ClipEvaluator(const QuerySpec& query, const VideoLayout& layout,
                             detect::ObjectDetector* detector,
                             detect::ActionRecognizer* recognizer)
    : query_(query),
      layout_(layout),
      detector_(detector),
      recognizer_(recognizer) {
  if (!query_.objects.empty()) {
    VAQ_CHECK(detector_ != nullptr);
  }
  if (query_.has_action()) {
    VAQ_CHECK(recognizer_ != nullptr);
  }
}

ClipEvaluation ClipEvaluator::Evaluate(
    ClipIndex clip, const std::vector<int64_t>& kcrit_objects,
    int64_t kcrit_action, bool short_circuit) const {
  VAQ_CHECK_EQ(kcrit_objects.size(), query_.objects.size());
  ClipEvaluation eval;
  eval.object_counts.assign(query_.objects.size(), -1);
  eval.object_missing.assign(query_.objects.size(), 0);
  const Interval frames = layout_.ClipFrameRange(clip);
  const Interval shots = layout_.ClipShotRange(clip);
  eval.frames_in_clip = frames.length();
  eval.shots_in_clip = shots.length();

  bool all_positive = true;
  // Object predicates first, in query order (Algorithm 2, lines 1-8).
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const ObjectTypeId type = query_.objects[i];
    int64_t count = 0;
    for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
      if (detector_->IsPositive(type, v)) ++count;
    }
    eval.object_counts[i] = count;
    if (count < kcrit_objects[i]) {
      all_positive = false;
      if (short_circuit) {
        eval.positive = false;
        return eval;
      }
    }
  }
  // Action predicate (Algorithm 2, lines 9-12).
  if (query_.has_action()) {
    int64_t count = 0;
    for (ShotIndex s = shots.lo; s <= shots.hi; ++s) {
      if (recognizer_->IsPositive(query_.action, s)) ++count;
    }
    eval.action_count = count;
    if (count < kcrit_action) all_positive = false;
  }
  eval.positive = all_positive;
  return eval;
}

ClipEvaluation ClipEvaluator::EvaluateResilient(
    ClipIndex clip, const std::vector<int64_t>& kcrit_objects,
    int64_t kcrit_action, bool short_circuit,
    detect::ResilientObjectDetector* detector,
    detect::ResilientActionRecognizer* recognizer,
    const fault::FaultPlan* plan,
    const std::vector<double>& object_fallback,
    double action_fallback) const {
  VAQ_CHECK_EQ(kcrit_objects.size(), query_.objects.size());
  VAQ_CHECK_EQ(object_fallback.size(), query_.objects.size());
  VAQ_CHECK(plan != nullptr);
  ClipEvaluation eval;
  eval.object_counts.assign(query_.objects.size(), -1);
  eval.object_missing.assign(query_.objects.size(), 0);
  const Interval frames = layout_.ClipFrameRange(clip);
  const Interval shots = layout_.ClipShotRange(clip);
  eval.frames_in_clip = frames.length();
  eval.shots_in_clip = shots.length();

  if (plan->DropClip(clip)) {
    // The segment never arrived: every unit of every predicate is missing
    // and the indicators are pure policy decisions.
    eval.dropped = true;
    bool all_positive = true;
    for (size_t i = 0; i < query_.objects.size(); ++i) {
      eval.object_counts[i] = 0;
      eval.object_missing[i] = eval.frames_in_clip;
      if (detector != nullptr) detector->CountFallbacks(eval.frames_in_clip);
      const double effective =
          static_cast<double>(eval.frames_in_clip) * object_fallback[i];
      if (effective < static_cast<double>(kcrit_objects[i])) {
        all_positive = false;
      }
    }
    if (query_.has_action()) {
      eval.action_count = 0;
      eval.action_missing = eval.shots_in_clip;
      if (recognizer != nullptr) recognizer->CountFallbacks(eval.shots_in_clip);
      const double effective =
          static_cast<double>(eval.shots_in_clip) * action_fallback;
      if (effective < static_cast<double>(kcrit_action)) all_positive = false;
    }
    eval.positive = all_positive;
    return eval;
  }

  bool all_positive = true;
  for (size_t i = 0; i < query_.objects.size(); ++i) {
    const ObjectTypeId type = query_.objects[i];
    int64_t count = 0;
    int64_t missing = 0;
    for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
      const StatusOr<bool> positive = detector->IsPositive(type, v);
      if (!positive.ok()) {
        ++missing;
      } else if (*positive) {
        ++count;
      }
    }
    eval.object_counts[i] = count;
    eval.object_missing[i] = missing;
    if (missing > 0) detector->CountFallbacks(missing);
    const double effective = static_cast<double>(count) +
                             static_cast<double>(missing) * object_fallback[i];
    if (effective < static_cast<double>(kcrit_objects[i])) {
      all_positive = false;
      if (short_circuit) {
        eval.positive = false;
        return eval;
      }
    }
  }
  if (query_.has_action()) {
    int64_t count = 0;
    int64_t missing = 0;
    for (ShotIndex s = shots.lo; s <= shots.hi; ++s) {
      const StatusOr<bool> positive = recognizer->IsPositive(query_.action, s);
      if (!positive.ok()) {
        ++missing;
      } else if (*positive) {
        ++count;
      }
    }
    eval.action_count = count;
    eval.action_missing = missing;
    if (missing > 0) recognizer->CountFallbacks(missing);
    const double effective = static_cast<double>(count) +
                             static_cast<double>(missing) * action_fallback;
    if (effective < static_cast<double>(kcrit_action)) all_positive = false;
  }
  eval.positive = all_positive;
  return eval;
}

}  // namespace online
}  // namespace vaq
