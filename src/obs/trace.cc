#include "obs/trace.h"

#include <chrono>

#include "obs/metrics.h"

namespace vaq {
namespace obs {
namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local int g_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::SetClock(ClockFn clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

double Tracer::NowMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_ ? clock_() : SteadyNowMs();
}

void Tracer::SetRecording(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = on;
  if (!on) records_.clear();
}

std::vector<SpanRecord> Tracer::TakeRecords() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(records_);
  return out;
}

void Tracer::RecordClosed(const char* name, int depth, double start_ms,
                          double duration_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recording_ || records_.size() >= kMaxRecords) return;
  records_.push_back(SpanRecord{name, depth, start_ms, duration_ms});
}

Span::Span(const char* name)
    : name_(name),
      start_ms_(Tracer::Global().NowMs()),
      depth_(g_span_depth++) {}

Span::~Span() {
  --g_span_depth;
  Tracer& tracer = Tracer::Global();
  const double duration = tracer.NowMs() - start_ms_;
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("vaq_span_total", {{"span", name_}})->Increment();
  registry
      .GetHistogram("vaq_span_ms", DefaultLatencyBucketsMs(),
                    {{"span", name_}})
      ->Observe(duration);
  tracer.RecordClosed(name_, depth_, start_ms_, duration);
}

}  // namespace obs
}  // namespace vaq
