#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <utility>
#include <vector>

namespace vaq {
namespace obs {
namespace {

// JSON string escaping (also valid for Prometheus label values, which use
// the same backslash conventions for the characters we emit).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LabelBlock(const Labels& labels) {
  if (labels.empty()) return "";
  return "{" + CanonicalLabels(labels) + "}";
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + EscapeJson(labels[i].first) + "\":\"" +
           EscapeJson(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// JSON number rendering: reuses FormatMetricValue but quotes non-finite
// values ("+Inf"/"-Inf"/"NaN"), which bare JSON numbers cannot express.
std::string JsonNumber(double v) {
  if (std::isinf(v) || std::isnan(v)) {
    return "\"" + FormatMetricValue(v) + "\"";
  }
  return FormatMetricValue(v);
}

const char* KindName(Snapshot::Kind kind) {
  switch (kind) {
    case Snapshot::Kind::kCounter:
      return "counter";
    case Snapshot::Kind::kGauge:
      return "gauge";
    case Snapshot::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

std::string FormatMetricValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string ExportPrometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const Snapshot::Entry& e : snapshot.entries) {
    if (e.name != last_family) {
      out += "# TYPE " + e.name + " " + KindName(e.kind) + "\n";
      last_family = e.name;
    }
    switch (e.kind) {
      case Snapshot::Kind::kCounter:
        out += e.name + LabelBlock(e.labels) + " " +
               std::to_string(e.counter_value) + "\n";
        break;
      case Snapshot::Kind::kGauge:
        out += e.name + LabelBlock(e.labels) + " " +
               FormatMetricValue(e.gauge_value) + "\n";
        break;
      case Snapshot::Kind::kHistogram: {
        int64_t cumulative = 0;
        for (size_t i = 0; i <= e.bounds.size(); ++i) {
          cumulative += e.bucket_counts[i];
          const double bound = i < e.bounds.size()
                                   ? e.bounds[i]
                                   : std::numeric_limits<double>::infinity();
          Labels labels = e.labels;
          labels.emplace_back("le", FormatMetricValue(bound));
          out += e.name + "_bucket" + LabelBlock(labels) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += e.name + "_sum" + LabelBlock(e.labels) + " " +
               FormatMetricValue(e.hist_sum) + "\n";
        out += e.name + "_count" + LabelBlock(e.labels) + " " +
               std::to_string(e.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const Snapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < snapshot.entries.size(); ++i) {
    const Snapshot::Entry& e = snapshot.entries[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + EscapeJson(e.name) + "\"";
    if (!e.labels.empty()) out += ",\"labels\":" + JsonLabels(e.labels);
    out += ",\"type\":\"" + std::string(KindName(e.kind)) + "\"";
    switch (e.kind) {
      case Snapshot::Kind::kCounter:
        out += ",\"value\":" + std::to_string(e.counter_value);
        break;
      case Snapshot::Kind::kGauge:
        out += ",\"value\":" + JsonNumber(e.gauge_value);
        break;
      case Snapshot::Kind::kHistogram: {
        out += ",\"buckets\":[";
        int64_t cumulative = 0;
        for (size_t b = 0; b <= e.bounds.size(); ++b) {
          if (b > 0) out += ",";
          cumulative += e.bucket_counts[b];
          out += "{\"le\":";
          out += b < e.bounds.size() ? JsonNumber(e.bounds[b]) : "\"+Inf\"";
          out += ",\"count\":" + std::to_string(cumulative) + "}";
        }
        out += "],\"count\":" + std::to_string(e.hist_count) +
               ",\"sum\":" + JsonNumber(e.hist_sum);
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// JSON lint
// ---------------------------------------------------------------------------

namespace {

struct JsonCursor {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }
  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

bool LintValue(JsonCursor* c, int depth);

bool LintString(JsonCursor* c) {
  if (!c->Consume('"')) return c->Fail("expected '\"'");
  while (c->pos < c->text.size()) {
    const char ch = c->text[c->pos];
    if (ch == '"') {
      ++c->pos;
      return true;
    }
    if (ch == '\\') {
      ++c->pos;
      if (c->pos >= c->text.size()) break;
      const char esc = c->text[c->pos];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          ++c->pos;
          if (c->pos >= c->text.size() ||
              !std::isxdigit(static_cast<unsigned char>(c->text[c->pos]))) {
            return c->Fail("bad \\u escape");
          }
        }
      } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
        return c->Fail("bad escape");
      }
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      return c->Fail("raw control character in string");
    }
    ++c->pos;
  }
  return c->Fail("unterminated string");
}

bool LintNumber(JsonCursor* c) {
  const size_t start = c->pos;
  c->Consume('-');
  while (c->pos < c->text.size() &&
         std::isdigit(static_cast<unsigned char>(c->text[c->pos]))) {
    ++c->pos;
  }
  if (c->Consume('.')) {
    while (c->pos < c->text.size() &&
           std::isdigit(static_cast<unsigned char>(c->text[c->pos]))) {
      ++c->pos;
    }
  }
  if (c->pos < c->text.size() &&
      (c->text[c->pos] == 'e' || c->text[c->pos] == 'E')) {
    ++c->pos;
    if (c->pos < c->text.size() &&
        (c->text[c->pos] == '+' || c->text[c->pos] == '-')) {
      ++c->pos;
    }
    while (c->pos < c->text.size() &&
           std::isdigit(static_cast<unsigned char>(c->text[c->pos]))) {
      ++c->pos;
    }
  }
  if (c->pos == start || (c->pos == start + 1 && c->text[start] == '-')) {
    return c->Fail("expected number");
  }
  return true;
}

bool LintLiteral(JsonCursor* c, const char* word) {
  for (const char* p = word; *p != '\0'; ++p) {
    if (!c->Consume(*p)) return c->Fail("bad literal");
  }
  return true;
}

bool LintValue(JsonCursor* c, int depth) {
  if (depth > 64) return c->Fail("nesting too deep");
  c->SkipSpace();
  if (c->pos >= c->text.size()) return c->Fail("unexpected end of input");
  const char ch = c->text[c->pos];
  if (ch == '{') {
    ++c->pos;
    c->SkipSpace();
    if (c->Consume('}')) return true;
    while (true) {
      c->SkipSpace();
      if (!LintString(c)) return false;
      c->SkipSpace();
      if (!c->Consume(':')) return c->Fail("expected ':'");
      if (!LintValue(c, depth + 1)) return false;
      c->SkipSpace();
      if (c->Consume(',')) continue;
      if (c->Consume('}')) return true;
      return c->Fail("expected ',' or '}'");
    }
  }
  if (ch == '[') {
    ++c->pos;
    c->SkipSpace();
    if (c->Consume(']')) return true;
    while (true) {
      if (!LintValue(c, depth + 1)) return false;
      c->SkipSpace();
      if (c->Consume(',')) continue;
      if (c->Consume(']')) return true;
      return c->Fail("expected ',' or ']'");
    }
  }
  if (ch == '"') return LintString(c);
  if (ch == 't') return LintLiteral(c, "true");
  if (ch == 'f') return LintLiteral(c, "false");
  if (ch == 'n') return LintLiteral(c, "null");
  return LintNumber(c);
}

}  // namespace

std::string JsonLintError(const std::string& text) {
  JsonCursor cursor{text, 0, ""};
  if (!LintValue(&cursor, 0)) return cursor.error;
  cursor.SkipSpace();
  if (cursor.pos != text.size()) {
    return "trailing content at offset " + std::to_string(cursor.pos);
  }
  return "";
}

// ---------------------------------------------------------------------------
// Prometheus text lint
// ---------------------------------------------------------------------------

namespace {

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool ValidMetricName(const std::string& name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (const char c : name) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

bool ParsePromValue(const std::string& text, double* value) {
  if (text == "+Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (text.empty()) return false;
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

// Parses `{k="v",...}` starting at `pos` (which must point at '{').
// Leaves `pos` one past the closing '}'. Returns false with `error` set
// on malformed input; fills sorted (name, value) pairs.
bool ParseLabelBlock(const std::string& line, size_t* pos,
                     std::vector<std::pair<std::string, std::string>>* labels,
                     std::string* error) {
  ++*pos;  // '{'
  while (*pos < line.size() && line[*pos] != '}') {
    size_t start = *pos;
    if (!IsLabelNameStart(line[*pos])) {
      *error = "bad label name";
      return false;
    }
    while (*pos < line.size() && IsLabelNameChar(line[*pos])) ++*pos;
    const std::string name = line.substr(start, *pos - start);
    if (*pos >= line.size() || line[*pos] != '=') {
      *error = "expected '=' after label name";
      return false;
    }
    ++*pos;
    if (*pos >= line.size() || line[*pos] != '"') {
      *error = "label value must be quoted";
      return false;
    }
    ++*pos;
    std::string value;
    while (*pos < line.size() && line[*pos] != '"') {
      if (line[*pos] == '\\') {
        ++*pos;
        if (*pos >= line.size() ||
            (line[*pos] != '\\' && line[*pos] != '"' && line[*pos] != 'n')) {
          *error = "bad escape in label value";
          return false;
        }
      }
      value += line[*pos];
      ++*pos;
    }
    if (*pos >= line.size()) {
      *error = "unterminated label value";
      return false;
    }
    ++*pos;  // '"'
    labels->emplace_back(name, value);
    if (*pos < line.size() && line[*pos] == ',') ++*pos;
  }
  if (*pos >= line.size()) {
    *error = "unterminated label block";
    return false;
  }
  ++*pos;  // '}'
  return true;
}

// Per-histogram-series state, keyed by (family, labels-without-le).
struct HistogramSeries {
  double last_cumulative = -1.0;
  bool saw_inf = false;
  double inf_cumulative = 0.0;
};

}  // namespace

std::string PromLintError(const std::string& text) {
  std::map<std::string, std::string> family_kind;  // name -> kind.
  std::map<std::string, HistogramSeries> histograms;
  int line_no = 0;
  size_t pos = 0;
  std::string pending_error;
  const auto fail = [&](const std::string& message) {
    return "line " + std::to_string(line_no) + ": " + message;
  };
  while (pos < text.size()) {
    ++line_no;
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) return fail("missing trailing newline");
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) return fail("empty line");
    if (line[0] == '#') {
      // Only `# TYPE <name> <kind>` comments are emitted; `# HELP` is
      // tolerated for future-proofing, anything else is an error.
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line.rfind("# TYPE ", 0) != 0) return fail("unknown comment form");
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos) return fail("malformed TYPE line");
      const std::string name = rest.substr(0, space);
      const std::string kind = rest.substr(space + 1);
      if (!ValidMetricName(name)) return fail("bad metric name in TYPE");
      if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
          kind != "summary" && kind != "untyped") {
        return fail("unknown metric kind '" + kind + "'");
      }
      if (family_kind.count(name) != 0) {
        return fail("family '" + name + "' declared twice");
      }
      family_kind[name] = kind;
      continue;
    }
    // Sample line: name[{labels}] value
    size_t cursor = 0;
    if (!IsMetricNameStart(line[0])) return fail("bad sample name");
    while (cursor < line.size() && IsMetricNameChar(line[cursor])) ++cursor;
    const std::string name = line.substr(0, cursor);
    std::vector<std::pair<std::string, std::string>> labels;
    if (cursor < line.size() && line[cursor] == '{') {
      if (!ParseLabelBlock(line, &cursor, &labels, &pending_error)) {
        return fail(pending_error);
      }
    }
    if (cursor >= line.size() || line[cursor] != ' ') {
      return fail("expected ' ' before sample value");
    }
    ++cursor;
    double value = 0.0;
    if (!ParsePromValue(line.substr(cursor), &value)) {
      return fail("unparsable sample value '" + line.substr(cursor) + "'");
    }
    // Resolve the family: exact for counters/gauges, suffixed for
    // histograms. A `_bucket`/`_sum`/`_count` suffix binds to a declared
    // histogram family first, so a counter literally named *_count can
    // still coexist with an unrelated histogram.
    std::string family = name;
    std::string suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      const std::string s(candidate);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string base = name.substr(0, name.size() - s.size());
        auto it = family_kind.find(base);
        if (it != family_kind.end() && it->second == "histogram") {
          family = base;
          suffix = s;
          break;
        }
      }
    }
    auto declared = family_kind.find(family);
    if (declared == family_kind.end()) {
      return fail("sample '" + name + "' has no TYPE declaration");
    }
    if (declared->second == "histogram") {
      if (suffix.empty()) {
        return fail("histogram family '" + family +
                    "' sampled without _bucket/_sum/_count");
      }
      // Series key: family + labels minus `le`, in appearance order
      // (the exporter emits labels canonically sorted).
      std::string key = family;
      std::string le_value;
      bool saw_le = false;
      for (const auto& [label_name, label_value] : labels) {
        if (label_name == "le") {
          le_value = label_value;
          saw_le = true;
          continue;
        }
        key += "|" + label_name + "=" + label_value;
      }
      HistogramSeries& series = histograms[key];
      if (suffix == "_bucket") {
        if (!saw_le) return fail("_bucket sample without an le label");
        if (series.saw_inf) {
          return fail("bucket after le=\"+Inf\" in histogram '" + family +
                      "'");
        }
        if (value < series.last_cumulative) {
          return fail("non-cumulative bucket counts in histogram '" +
                      family + "'");
        }
        series.last_cumulative = value;
        if (le_value == "+Inf") {
          series.saw_inf = true;
          series.inf_cumulative = value;
        }
      } else if (suffix == "_count") {
        if (!series.saw_inf) {
          return fail("histogram '" + family +
                      "' has _count before an le=\"+Inf\" bucket");
        }
        if (value != series.inf_cumulative) {
          return fail("histogram '" + family +
                      "' _count disagrees with the +Inf bucket");
        }
      }
    } else if (!suffix.empty()) {
      return fail("suffix sample for non-histogram family '" + family + "'");
    }
  }
  for (const auto& [key, series] : histograms) {
    if (!series.saw_inf) {
      return "histogram series '" + key + "' never reached le=\"+Inf\"";
    }
  }
  return "";
}

}  // namespace obs
}  // namespace vaq
