#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vaq {
namespace obs {
namespace {

// JSON string escaping (also valid for Prometheus label values, which use
// the same backslash conventions for the characters we emit).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LabelBlock(const Labels& labels) {
  if (labels.empty()) return "";
  return "{" + CanonicalLabels(labels) + "}";
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + EscapeJson(labels[i].first) + "\":\"" +
           EscapeJson(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// JSON number rendering: reuses FormatMetricValue but quotes non-finite
// values ("+Inf"/"-Inf"/"NaN"), which bare JSON numbers cannot express.
std::string JsonNumber(double v) {
  if (std::isinf(v) || std::isnan(v)) {
    return "\"" + FormatMetricValue(v) + "\"";
  }
  return FormatMetricValue(v);
}

const char* KindName(Snapshot::Kind kind) {
  switch (kind) {
    case Snapshot::Kind::kCounter:
      return "counter";
    case Snapshot::Kind::kGauge:
      return "gauge";
    case Snapshot::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

std::string FormatMetricValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string ExportPrometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const Snapshot::Entry& e : snapshot.entries) {
    if (e.name != last_family) {
      out += "# TYPE " + e.name + " " + KindName(e.kind) + "\n";
      last_family = e.name;
    }
    switch (e.kind) {
      case Snapshot::Kind::kCounter:
        out += e.name + LabelBlock(e.labels) + " " +
               std::to_string(e.counter_value) + "\n";
        break;
      case Snapshot::Kind::kGauge:
        out += e.name + LabelBlock(e.labels) + " " +
               FormatMetricValue(e.gauge_value) + "\n";
        break;
      case Snapshot::Kind::kHistogram: {
        int64_t cumulative = 0;
        for (size_t i = 0; i <= e.bounds.size(); ++i) {
          cumulative += e.bucket_counts[i];
          const double bound = i < e.bounds.size()
                                   ? e.bounds[i]
                                   : std::numeric_limits<double>::infinity();
          Labels labels = e.labels;
          labels.emplace_back("le", FormatMetricValue(bound));
          out += e.name + "_bucket" + LabelBlock(labels) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += e.name + "_sum" + LabelBlock(e.labels) + " " +
               FormatMetricValue(e.hist_sum) + "\n";
        out += e.name + "_count" + LabelBlock(e.labels) + " " +
               std::to_string(e.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const Snapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < snapshot.entries.size(); ++i) {
    const Snapshot::Entry& e = snapshot.entries[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + EscapeJson(e.name) + "\"";
    if (!e.labels.empty()) out += ",\"labels\":" + JsonLabels(e.labels);
    out += ",\"type\":\"" + std::string(KindName(e.kind)) + "\"";
    switch (e.kind) {
      case Snapshot::Kind::kCounter:
        out += ",\"value\":" + std::to_string(e.counter_value);
        break;
      case Snapshot::Kind::kGauge:
        out += ",\"value\":" + JsonNumber(e.gauge_value);
        break;
      case Snapshot::Kind::kHistogram: {
        out += ",\"buckets\":[";
        int64_t cumulative = 0;
        for (size_t b = 0; b <= e.bounds.size(); ++b) {
          if (b > 0) out += ",";
          cumulative += e.bucket_counts[b];
          out += "{\"le\":";
          out += b < e.bounds.size() ? JsonNumber(e.bounds[b]) : "\"+Inf\"";
          out += ",\"count\":" + std::to_string(cumulative) + "}";
        }
        out += "],\"count\":" + std::to_string(e.hist_count) +
               ",\"sum\":" + JsonNumber(e.hist_sum);
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// JSON lint
// ---------------------------------------------------------------------------

namespace {

struct JsonCursor {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }
  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

bool LintValue(JsonCursor* c, int depth);

bool LintString(JsonCursor* c) {
  if (!c->Consume('"')) return c->Fail("expected '\"'");
  while (c->pos < c->text.size()) {
    const char ch = c->text[c->pos];
    if (ch == '"') {
      ++c->pos;
      return true;
    }
    if (ch == '\\') {
      ++c->pos;
      if (c->pos >= c->text.size()) break;
      const char esc = c->text[c->pos];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          ++c->pos;
          if (c->pos >= c->text.size() ||
              !std::isxdigit(static_cast<unsigned char>(c->text[c->pos]))) {
            return c->Fail("bad \\u escape");
          }
        }
      } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
        return c->Fail("bad escape");
      }
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      return c->Fail("raw control character in string");
    }
    ++c->pos;
  }
  return c->Fail("unterminated string");
}

bool LintNumber(JsonCursor* c) {
  const size_t start = c->pos;
  c->Consume('-');
  while (c->pos < c->text.size() &&
         std::isdigit(static_cast<unsigned char>(c->text[c->pos]))) {
    ++c->pos;
  }
  if (c->Consume('.')) {
    while (c->pos < c->text.size() &&
           std::isdigit(static_cast<unsigned char>(c->text[c->pos]))) {
      ++c->pos;
    }
  }
  if (c->pos < c->text.size() &&
      (c->text[c->pos] == 'e' || c->text[c->pos] == 'E')) {
    ++c->pos;
    if (c->pos < c->text.size() &&
        (c->text[c->pos] == '+' || c->text[c->pos] == '-')) {
      ++c->pos;
    }
    while (c->pos < c->text.size() &&
           std::isdigit(static_cast<unsigned char>(c->text[c->pos]))) {
      ++c->pos;
    }
  }
  if (c->pos == start || (c->pos == start + 1 && c->text[start] == '-')) {
    return c->Fail("expected number");
  }
  return true;
}

bool LintLiteral(JsonCursor* c, const char* word) {
  for (const char* p = word; *p != '\0'; ++p) {
    if (!c->Consume(*p)) return c->Fail("bad literal");
  }
  return true;
}

bool LintValue(JsonCursor* c, int depth) {
  if (depth > 64) return c->Fail("nesting too deep");
  c->SkipSpace();
  if (c->pos >= c->text.size()) return c->Fail("unexpected end of input");
  const char ch = c->text[c->pos];
  if (ch == '{') {
    ++c->pos;
    c->SkipSpace();
    if (c->Consume('}')) return true;
    while (true) {
      c->SkipSpace();
      if (!LintString(c)) return false;
      c->SkipSpace();
      if (!c->Consume(':')) return c->Fail("expected ':'");
      if (!LintValue(c, depth + 1)) return false;
      c->SkipSpace();
      if (c->Consume(',')) continue;
      if (c->Consume('}')) return true;
      return c->Fail("expected ',' or '}'");
    }
  }
  if (ch == '[') {
    ++c->pos;
    c->SkipSpace();
    if (c->Consume(']')) return true;
    while (true) {
      if (!LintValue(c, depth + 1)) return false;
      c->SkipSpace();
      if (c->Consume(',')) continue;
      if (c->Consume(']')) return true;
      return c->Fail("expected ',' or ']'");
    }
  }
  if (ch == '"') return LintString(c);
  if (ch == 't') return LintLiteral(c, "true");
  if (ch == 'f') return LintLiteral(c, "false");
  if (ch == 'n') return LintLiteral(c, "null");
  return LintNumber(c);
}

}  // namespace

std::string JsonLintError(const std::string& text) {
  JsonCursor cursor{text, 0, ""};
  if (!LintValue(&cursor, 0)) return cursor.error;
  cursor.SkipSpace();
  if (cursor.pos != text.size()) {
    return "trailing content at offset " + std::to_string(cursor.pos);
  }
  return "";
}

}  // namespace obs
}  // namespace vaq
