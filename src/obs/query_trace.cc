#include "obs/query_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace vaq {
namespace obs {
namespace {

std::string FormatMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

thread_local QueryContext g_current_context;

}  // namespace

// ---------------------------------------------------------------------------
// QueryTrace
// ---------------------------------------------------------------------------

QueryTrace::QueryTrace(std::string root_name) {
  Node root;
  root.name = std::move(root_name);
  nodes_.push_back(std::move(root));
}

int QueryTrace::Child(int parent, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  VAQ_CHECK_GE(parent, 0);
  VAQ_CHECK_LT(static_cast<size_t>(parent), nodes_.size());
  for (const int child : nodes_[parent].children) {
    if (nodes_[child].name == name) return child;
  }
  const int id = static_cast<int>(nodes_.size());
  Node node;
  node.name = name;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

void QueryTrace::AddMs(int node, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  VAQ_CHECK_GE(node, 0);
  VAQ_CHECK_LT(static_cast<size_t>(node), nodes_.size());
  nodes_[node].self_ms += ms;
}

void QueryTrace::AddStat(int node, const std::string& key, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  VAQ_CHECK_GE(node, 0);
  VAQ_CHECK_LT(static_cast<size_t>(node), nodes_.size());
  nodes_[node].stats[key] += delta;
}

namespace {

double TotalMs(const std::vector<QueryTrace::Node>& nodes, int id) {
  double total = nodes[id].self_ms;
  for (const int child : nodes[id].children) {
    total += TotalMs(nodes, child);
  }
  return total;
}

void RenderNode(const std::vector<QueryTrace::Node>& nodes, int id,
                int depth, std::string* out) {
  const QueryTrace::Node& node = nodes[id];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  *out += "  self=" + FormatMs(node.self_ms) + "ms total=" +
          FormatMs(TotalMs(nodes, id)) + "ms";
  for (const auto& [key, value] : node.stats) {
    *out += " " + key + "=" + std::to_string(value);
  }
  *out += "\n";
  for (const int child : node.children) {
    RenderNode(nodes, child, depth + 1, out);
  }
}

}  // namespace

std::string QueryTrace::RenderProfile() const {
  const std::vector<Node> nodes = snapshot();
  std::string out;
  RenderNode(nodes, 0, 0, &out);
  return out;
}

const std::string& QueryTrace::root_name() const {
  // The root's name is immutable after construction.
  return nodes_[0].name;
}

std::vector<QueryTrace::Node> QueryTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_;
}

// ---------------------------------------------------------------------------
// QueryContext
// ---------------------------------------------------------------------------

QueryContext QueryContext::Child(const std::string& name) const {
  if (trace == nullptr) return {};
  return {trace, trace->Child(node, name)};
}

void QueryContext::AddMs(double ms) const {
  if (trace != nullptr) trace->AddMs(node, ms);
}

void QueryContext::AddStat(const std::string& key, int64_t delta) const {
  if (trace != nullptr) trace->AddStat(node, key, delta);
}

const QueryContext& CurrentQueryContext() { return g_current_context; }

ScopedQueryContext::ScopedQueryContext(const QueryContext& ctx)
    : prev_(g_current_context) {
  g_current_context = ctx;
}

ScopedQueryContext::~ScopedQueryContext() { g_current_context = prev_; }

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

namespace {

// Emits the subtree rooted at `id` starting at virtual time `start_ms`.
void EmitEvents(const std::vector<QueryTrace::Node>& nodes, int id,
                double start_ms, int tid, bool* first, std::string* out) {
  const QueryTrace::Node& node = nodes[id];
  const double total = TotalMs(nodes, id);
  if (!*first) *out += ",";
  *first = false;
  *out += "{\"name\":\"" + EscapeJson(node.name) + "\",\"ph\":\"X\"";
  *out += ",\"ts\":" + FormatMs(start_ms * 1000.0);
  *out += ",\"dur\":" + FormatMs(total * 1000.0);
  *out += ",\"pid\":1,\"tid\":" + std::to_string(tid);
  *out += ",\"args\":{\"self_ms\":" + FormatMs(node.self_ms);
  for (const auto& [key, value] : node.stats) {
    *out += ",\"" + EscapeJson(key) + "\":" + std::to_string(value);
  }
  *out += "}}";
  // Children occupy the tail of the parent's span, after its self time.
  double child_start = start_ms + node.self_ms;
  for (const int child : node.children) {
    EmitEvents(nodes, child, child_start, tid, first, out);
    child_start += TotalMs(nodes, child);
  }
}

}  // namespace

std::string ExportChromeTrace(const std::vector<const QueryTrace*>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < traces.size(); ++i) {
    if (traces[i] == nullptr) continue;
    EmitEvents(traces[i]->snapshot(), 0, 0.0, static_cast<int>(i) + 1,
               &first, &out);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Latency percentiles
// ---------------------------------------------------------------------------

double PercentileNearestRank(const std::vector<double>& sorted,
                             double quantile) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(quantile * static_cast<double>(sorted.size()));
  const size_t index =
      rank < 1.0 ? 0 : std::min(sorted.size() - 1, static_cast<size_t>(rank) - 1);
  return sorted[index];
}

LatencyRecorder::LatencyRecorder(const std::string& name,
                                 const std::string& path)
    : LatencyRecorder(name, Labels{{"path", path}}) {}

LatencyRecorder::LatencyRecorder(const std::string& name,
                                 const Labels& labels) {
  MetricRegistry& registry = MetricRegistry::Global();
  const auto with_quantile = [&labels](const char* q) {
    Labels out = labels;
    out.emplace_back("quantile", q);
    return out;
  };
  p50_ = registry.GetGauge(name, with_quantile("0.5"));
  p99_ = registry.GetGauge(name, with_quantile("0.99"));
  p999_ = registry.GetGauge(name, with_quantile("0.999"));
  count_ = registry.GetCounter(name + "_count", labels);
}

void LatencyRecorder::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), ms), ms);
  count_->Increment();
  p50_->Set(PercentileNearestRank(sorted_, 0.5));
  p99_->Set(PercentileNearestRank(sorted_, 0.99));
  p999_->Set(PercentileNearestRank(sorted_, 0.999));
}

int64_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sorted_.size());
}

std::vector<double> LatencyRecorder::sorted_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sorted_;
}

}  // namespace obs
}  // namespace vaq
