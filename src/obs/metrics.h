// Process-wide metric registry.
//
// The paper's evaluation is entirely metric-driven (F1 per query, model
// invocations and frame skips for the online engines, random accesses for
// the offline ones), but until now every component kept its own ad-hoc
// counters. `MetricRegistry` gives them a single home with a uniform
// export path (obs/export.h: Prometheus text and JSON):
//
//   * `Counter` — monotone int64 (invocations, retries, rejections);
//   * `Gauge`  — last-write-wins double (queue depth, breaker state);
//   * `Histogram` — fixed upper-bound buckets plus count/sum (latencies).
//
// Instruments are *labeled families*: the same name may exist with
// different label sets, e.g.
//
//   vaq_model_calls_total{domain="detector",outcome="ok"}
//   vaq_model_calls_total{domain="detector",outcome="timeout"}
//
// Registration (Get*) takes a mutex; the returned pointer is stable for
// the registry's lifetime, so hot paths resolve once (constructor or
// function-local static) and then touch a single relaxed `std::atomic` —
// cheap enough to sit inside the per-frame model loop.
//
// Determinism: every engine records *logical* quantities (event counts,
// simulated milliseconds) rather than wall time, and snapshots iterate
// families in sorted (name, labels) order, so a seeded run exports a
// byte-identical snapshot every time (the tier-1 `vaqctl metrics` check
// and tests/obs_integration_test.cc both assert this).
#ifndef VAQ_OBS_METRICS_H_
#define VAQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vaq {
namespace obs {

// Label set of one family member, e.g. {{"model", "yolo"}}. Order is
// irrelevant: keys are sorted during canonicalization.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotone event counter. Relaxed atomics: per-series totals are exact
// because increments are atomic; no cross-series ordering is implied.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins instantaneous value. Stored as raw bits so the hot path
// stays a single atomic store (std::atomic<double> arithmetic is not
// needed; Add is a CAS loop for the rare accumulating gauge).
class Gauge {
 public:
  void Set(double v) { bits_.store(ToBits(v), std::memory_order_relaxed); }
  void Add(double d) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, ToBits(FromBits(old) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  static uint64_t ToBits(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double FromBits(uint64_t bits) {
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds in
// ascending order; an implicit +inf bucket catches the rest. Cumulative
// counts are derived at snapshot time (Prometheus convention).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) count; index bounds_.size() is +inf.
  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void Reset();

  // Overwrites the histogram with a snapshot taken by TakeSnapshot
  // (checkpoint recovery). `bucket_counts` must have bounds().size() + 1
  // entries. Not atomic with respect to concurrent Observe calls;
  // recovery runs single-threaded before any engine restarts.
  void RestoreState(const std::vector<int64_t>& bucket_counts, int64_t count,
                    double sum);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
};

// Latency-style default buckets (ms): sub-ms through minutes.
const std::vector<double>& DefaultLatencyBucketsMs();

// A point-in-time copy of every registered instrument, ordered by
// (name, canonical labels) — the exporters' input.
struct Snapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;  // Canonical (key-sorted) order.
    Kind kind = Kind::kCounter;
    int64_t counter_value = 0;
    double gauge_value = 0.0;
    // Histogram payload (parallel to bounds, plus the +inf bucket last).
    std::vector<double> bounds;
    std::vector<int64_t> bucket_counts;
    int64_t hist_count = 0;
    double hist_sum = 0.0;
  };
  std::vector<Entry> entries;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide registry every engine records into.
  static MetricRegistry& Global();

  // Get-or-create. The returned pointer is stable until the registry is
  // destroyed (never, for Global()); callers cache it. Aborts if `name`
  // is already registered with a different instrument kind, or — for
  // histograms — different bounds.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  Snapshot TakeSnapshot() const;

  // Zeroes every instrument (pointers stay valid). Tests and one-shot
  // tools use this to scope a snapshot to a single run.
  void Reset();

 private:
  struct Instrument {
    Snapshot::Kind kind;
    Labels labels;  // Canonical order, for snapshots.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Keyed by (name, canonical label string): std::map keeps snapshot
  // iteration deterministically sorted.
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Instrument> instruments_;
};

// Canonical label rendering: key-sorted `k1="v1",k2="v2"` with
// backslash/quote/newline escaping (the Prometheus text convention).
std::string CanonicalLabels(Labels labels);

// Loads `snap` back into the global registry: instruments are created on
// demand (histograms with the snapshot's bounds) and overwritten with the
// recorded values. Instruments registered but absent from `snap` are left
// untouched — recovery paths Reset() first when they need a clean slate.
void RestoreSnapshot(const Snapshot& snap);

// Subset of `in` whose family names start with any of `prefixes`, order
// preserved. Tools and tests use this to export or compare only the
// *logical* families of a run (event counts, simulated milliseconds) and
// leave out timing-dependent ones such as wall-time span histograms or
// queue-depth gauges.
Snapshot FilterSnapshot(const Snapshot& in,
                        const std::vector<std::string>& prefixes);

// The complement: every entry whose family name starts with none of
// `prefixes`. The cluster determinism suite compares a distributed run
// against the single-node reference after excluding the cluster's own
// `vaq_cluster_*` transport accounting — everything that remains must
// match byte-for-byte.
Snapshot ExcludeSnapshot(const Snapshot& in,
                         const std::vector<std::string>& prefixes);

}  // namespace obs
}  // namespace vaq

#endif  // VAQ_OBS_METRICS_H_
