// Per-query cost attribution: profile trees, context propagation, Chrome
// trace export and exact-sample latency percentiles.
//
// The process-global registry (obs/metrics.h) answers "how much did this
// *process* spend"; a `QueryTrace` answers "where did *this query's*
// simulated milliseconds and model calls go" once the query crosses the
// serve worker pool or the cluster scatter–gather. A trace is a tree of
// named phase nodes; every node accumulates self simulated-ms plus named
// integer stats (model calls, cache hits, pruned clips, net bytes, ...).
//
// A `QueryContext` is the handle threaded through execution: a pointer to
// the owning trace plus the node the current phase should charge. All
// operations no-op on a null trace, so instrumented code paths cost one
// branch when tracing is off. Cross-thread propagation is explicit —
// the admitting thread mints the context, the worker installs it with
// `ScopedQueryContext`, and leaf code (e.g. the resilient model wrappers)
// reads `CurrentQueryContext()` instead of growing a parameter on every
// engine signature.
//
// Determinism: nodes are created get-or-create by (parent, name) in
// first-creation order, and only one thread executes a given query at a
// time (the serve layer pins a query to one worker; the cluster
// coordinator is single-threaded per query), so the tree shape, the
// rendered profile and the exported Chrome JSON are byte-identical per
// seed at any thread or shard count. Timestamps never enter a trace —
// `ExportChromeTrace` lays spans out on a virtual timeline derived from
// the accumulated simulated-ms alone.
#ifndef VAQ_OBS_QUERY_TRACE_H_
#define VAQ_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vaq {
namespace obs {

// A tree of phase nodes for one query. Thread-compatible: concurrent
// calls are safe (internal mutex), but deterministic node ordering is
// only guaranteed when one thread at a time grows a given subtree.
class QueryTrace {
 public:
  struct Node {
    std::string name;
    int parent = -1;  // -1 for the root.
    std::vector<int> children;
    double self_ms = 0.0;
    std::map<std::string, int64_t> stats;  // Sorted for rendering.
  };

  // Creates the root node (id 0) named `root_name` — conventionally the
  // query id ("q3") or statement form ("explain").
  explicit QueryTrace(std::string root_name);

  // Get-or-create the child of `parent` named `name`; returns its id.
  // Repeated phases fold into one node (their ms and stats accumulate).
  int Child(int parent, const std::string& name);

  void AddMs(int node, double ms);
  void AddStat(int node, const std::string& key, int64_t delta);

  // Deterministic profile tree, one node per line:
  //   <root>  self=0.000ms total=12.340ms
  //     <child>  self=12.340ms total=12.340ms  rows=120 seeks=4
  // total = self + sum of children's totals.
  std::string RenderProfile() const;

  const std::string& root_name() const;
  // Copy of the node table (for exporters and tests).
  std::vector<Node> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
};

// The handle threaded through execution: which trace, which node to
// charge. Copyable by value; a default context traces nothing.
struct QueryContext {
  QueryTrace* trace = nullptr;
  int node = 0;

  bool active() const { return trace != nullptr; }
  // Context for the child phase `name` (no-op context when inactive).
  QueryContext Child(const std::string& name) const;
  void AddMs(double ms) const;
  void AddStat(const std::string& key, int64_t delta) const;
};

// Thread-local current context, for leaf code that cannot take a context
// parameter (the resilient model wrappers). Defaults to inactive.
const QueryContext& CurrentQueryContext();

// Installs `ctx` as the thread's current context for the scope.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(const QueryContext& ctx);
  ~ScopedQueryContext();

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext prev_;
};

// Chrome trace-event JSON ("X" complete events) over the given traces,
// one tid per trace, laid out on a virtual timeline (root at 0, each
// child starts after its earlier siblings' totals). Node stats become
// event args. The output passes `JsonLintError` (obs/export.h) and is a
// pure function of the traces' contents.
std::string ExportChromeTrace(const std::vector<const QueryTrace*>& traces);

// Nearest-rank percentile over an ascending-sorted sample vector;
// returns 0.0 when empty.
double PercentileNearestRank(const std::vector<double>& sorted,
                             double quantile);

// Exact-sample latency percentile tracker. Every `Record` inserts into a
// sorted sample vector and republishes p50/p99/p999 as
//   <name>{path="<path>",quantile="0.5|0.99|0.999"}
// gauges plus a <name>_count{path=...} counter in the global registry.
// Because the gauges are a pure function of the sample *multiset*, the
// exported values are identical at any thread count for a fixed
// workload.
class LatencyRecorder {
 public:
  LatencyRecorder(const std::string& name, const std::string& path);

  // Arbitrary-label variant: publishes <name>{<labels>,quantile=...}
  // gauges plus <name>_count{<labels>}. The multi-tenant front door uses
  // it for per-tenant percentiles ({tenant="..."}).
  LatencyRecorder(const std::string& name, const Labels& labels);

  void Record(double ms);

  int64_t count() const;
  std::vector<double> sorted_samples() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> sorted_;
  Gauge* p50_;
  Gauge* p99_;
  Gauge* p999_;
  Counter* count_;
};

}  // namespace obs
}  // namespace vaq

#endif  // VAQ_OBS_QUERY_TRACE_H_
