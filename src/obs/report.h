// Machine-readable run reports for the bench harness.
//
// Every `bench_*` binary prints a human table plus a CSV block; a
// `ReportCollector` additionally captures the same rows *and* the global
// metric registry snapshot into one JSON document, written as a sidecar
// file next to the table output:
//
//   obs::ReportCollector report("tab3_predicates");
//   report.AddField("scenario", "youtube:1");
//   report.AddRow({"q1", "0.93", ...});       // Mirrors the table rows.
//   report.Write("/tmp/tab3.metrics.json");   // Or WriteFromEnv().
//
// `WriteFromEnv()` is the harness hook: it writes the sidecar only when
// `VAQ_METRICS_SIDECAR` names a target directory, so plain interactive
// runs stay file-free while CI sweeps collect every binary's metrics
// with one environment variable.
#ifndef VAQ_OBS_REPORT_H_
#define VAQ_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

namespace vaq {
namespace obs {

class ReportCollector {
 public:
  // `name` identifies the run (typically the bench/table id); it becomes
  // the sidecar's "name" field and the WriteFromEnv file stem.
  explicit ReportCollector(std::string name);

  // Free-form scalar context (scenario id, seed, option values).
  void AddField(const std::string& key, const std::string& value);
  void AddField(const std::string& key, int64_t value);
  void AddField(const std::string& key, double value);

  // Tabular payload, mirroring the printed table.
  void SetColumns(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);

  // The full document: {"name", "fields", "columns", "rows", "metrics"}
  // with "metrics" holding the global registry's JSON export.
  std::string ToJson() const;

  // Writes ToJson() to `path`; false (with a warning log) on I/O error.
  bool Write(const std::string& path) const;

  // Writes to `$VAQ_METRICS_SIDECAR/<name>.metrics.json` when the env
  // var is set and non-empty; no-op (returns false) otherwise.
  bool WriteFromEnv() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;  // Pre-encoded.
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace obs
}  // namespace vaq

#endif  // VAQ_OBS_REPORT_H_
