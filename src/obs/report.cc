#include "obs/report.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace vaq {
namespace obs {
namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace

ReportCollector::ReportCollector(std::string name) : name_(std::move(name)) {}

void ReportCollector::AddField(const std::string& key,
                               const std::string& value) {
  fields_.emplace_back(key, Quote(value));
}

void ReportCollector::AddField(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void ReportCollector::AddField(const std::string& key, double value) {
  fields_.emplace_back(key, FormatMetricValue(value));
}

void ReportCollector::SetColumns(std::vector<std::string> columns) {
  columns_ = std::move(columns);
}

void ReportCollector::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string ReportCollector::ToJson() const {
  std::string out = "{\"name\":" + Quote(name_);
  out += ",\"fields\":{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += Quote(fields_[i].first) + ":" + fields_[i].second;
  }
  out += "}";
  auto append_cells = [&out](const std::vector<std::string>& cells) {
    out += "[";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ",";
      out += Quote(cells[i]);
    }
    out += "]";
  };
  out += ",\"columns\":";
  append_cells(columns_);
  out += ",\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ",";
    append_cells(rows_[i]);
  }
  out += "]";
  out += ",\"metrics\":" +
         ExportJson(MetricRegistry::Global().TakeSnapshot());
  out += "}";
  return out;
}

bool ReportCollector::Write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    VAQ_LOG(Warning) << "cannot write metrics sidecar " << path;
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    VAQ_LOG(Warning) << "short write to metrics sidecar " << path;
    return false;
  }
  return true;
}

bool ReportCollector::WriteFromEnv() const {
  const char* dir = std::getenv("VAQ_METRICS_SIDECAR");
  if (dir == nullptr || dir[0] == '\0') return false;
  return Write(std::string(dir) + "/" + name_ + ".metrics.json");
}

}  // namespace obs
}  // namespace vaq
