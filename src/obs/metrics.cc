#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace vaq {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    VAQ_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; NaN lands in +inf.
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), v,
                       [](double value, double bound) {
                         return !(value > bound);  // value <= bound, NaN-safe.
                       }) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  double next;
  do {
    double current;
    std::memcpy(&current, &old, sizeof(current));
    next = current + v;
    uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(old, next_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  } while (true);
}

double Histogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

void Histogram::RestoreState(const std::vector<int64_t>& bucket_counts,
                             int64_t count, double sum) {
  VAQ_CHECK_EQ(bucket_counts.size(), bounds_.size() + 1)
      << "histogram restore with mismatched bucket count";
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(bucket_counts[i], std::memory_order_relaxed);
  }
  count_.store(count, std::memory_order_relaxed);
  uint64_t bits;
  std::memcpy(&bits, &sum, sizeof(bits));
  sum_bits_.store(bits, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> buckets = {0.1, 0.5, 1,    5,    10,   50,
                                              100, 500, 1000, 5000, 10000};
  return buckets;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

std::string CanonicalLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    for (const char c : labels[i].second) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += "\"";
  }
  return out;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* const registry = [] {
    MetricRegistry* r = new MetricRegistry();
    // Surface rate-limited warn suppression (common/logging.h) as a
    // counter; common/ cannot depend on obs/, so the hook is inverted.
    // Registry Reset() zeroes it like every other counter.
    Counter* suppressed = r->GetCounter("vaq_log_suppressed_total", {});
    internal_logging::SetLogSuppressionListener(
        [suppressed](int64_t n) { suppressed->Increment(n); });
    return r;
  }();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  Labels canonical = labels;
  std::sort(canonical.begin(), canonical.end());
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, CanonicalLabels(canonical)}];
  if (inst.counter == nullptr) {
    VAQ_CHECK(inst.gauge == nullptr && inst.histogram == nullptr)
        << "metric '" << name << "' re-registered with a different kind";
    inst.kind = Snapshot::Kind::kCounter;
    inst.labels = std::move(canonical);
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const Labels& labels) {
  Labels canonical = labels;
  std::sort(canonical.begin(), canonical.end());
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, CanonicalLabels(canonical)}];
  if (inst.gauge == nullptr) {
    VAQ_CHECK(inst.counter == nullptr && inst.histogram == nullptr)
        << "metric '" << name << "' re-registered with a different kind";
    inst.kind = Snapshot::Kind::kGauge;
    inst.labels = std::move(canonical);
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds,
                                        const Labels& labels) {
  Labels canonical = labels;
  std::sort(canonical.begin(), canonical.end());
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, CanonicalLabels(canonical)}];
  if (inst.histogram == nullptr) {
    VAQ_CHECK(inst.counter == nullptr && inst.gauge == nullptr)
        << "metric '" << name << "' re-registered with a different kind";
    inst.kind = Snapshot::Kind::kHistogram;
    inst.labels = std::move(canonical);
    inst.histogram = std::make_unique<Histogram>(bounds);
  } else {
    VAQ_CHECK(inst.histogram->bounds() == bounds)
        << "histogram '" << name << "' re-registered with different buckets";
  }
  return inst.histogram.get();
}

Snapshot MetricRegistry::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.entries.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    Snapshot::Entry entry;
    entry.name = key.first;
    entry.labels = inst.labels;
    entry.kind = inst.kind;
    switch (inst.kind) {
      case Snapshot::Kind::kCounter:
        entry.counter_value = inst.counter->value();
        break;
      case Snapshot::Kind::kGauge:
        entry.gauge_value = inst.gauge->value();
        break;
      case Snapshot::Kind::kHistogram: {
        const Histogram& h = *inst.histogram;
        entry.bounds = h.bounds();
        entry.bucket_counts.resize(entry.bounds.size() + 1);
        for (size_t i = 0; i <= entry.bounds.size(); ++i) {
          entry.bucket_counts[i] = h.bucket_count(i);
        }
        entry.hist_count = h.count();
        entry.hist_sum = h.sum();
        break;
      }
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, inst] : instruments_) {
    switch (inst.kind) {
      case Snapshot::Kind::kCounter:
        inst.counter->Reset();
        break;
      case Snapshot::Kind::kGauge:
        inst.gauge->Reset();
        break;
      case Snapshot::Kind::kHistogram:
        inst.histogram->Reset();
        break;
    }
  }
}

void RestoreSnapshot(const Snapshot& snap) {
  MetricRegistry& registry = MetricRegistry::Global();
  for (const Snapshot::Entry& entry : snap.entries) {
    switch (entry.kind) {
      case Snapshot::Kind::kCounter: {
        Counter* c = registry.GetCounter(entry.name, entry.labels);
        c->Reset();
        c->Increment(entry.counter_value);
        break;
      }
      case Snapshot::Kind::kGauge:
        registry.GetGauge(entry.name, entry.labels)->Set(entry.gauge_value);
        break;
      case Snapshot::Kind::kHistogram:
        registry.GetHistogram(entry.name, entry.bounds, entry.labels)
            ->RestoreState(entry.bucket_counts, entry.hist_count,
                           entry.hist_sum);
        break;
    }
  }
}

Snapshot FilterSnapshot(const Snapshot& in,
                        const std::vector<std::string>& prefixes) {
  Snapshot out;
  for (const Snapshot::Entry& entry : in.entries) {
    for (const std::string& prefix : prefixes) {
      if (entry.name.rfind(prefix, 0) == 0) {
        out.entries.push_back(entry);
        break;
      }
    }
  }
  return out;
}

Snapshot ExcludeSnapshot(const Snapshot& in,
                         const std::vector<std::string>& prefixes) {
  Snapshot out;
  for (const Snapshot::Entry& entry : in.entries) {
    bool excluded = false;
    for (const std::string& prefix : prefixes) {
      if (entry.name.rfind(prefix, 0) == 0) {
        excluded = true;
        break;
      }
    }
    if (!excluded) out.entries.push_back(entry);
  }
  return out;
}

}  // namespace obs
}  // namespace vaq
