// Snapshot exporters: Prometheus text exposition and JSON.
//
// Both render a `Snapshot` (obs/metrics.h) deterministically — families
// sorted by (name, labels), doubles formatted by one shared routine — so
// two snapshots with equal values export byte-identical strings (the
// property the tier-1 `vaqctl metrics` determinism check relies on).
//
// Prometheus text follows the exposition format: one `# TYPE` line per
// family, histogram expansion into cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`. JSON is a single object:
//
//   {"metrics": [{"name": ..., "labels": {...}, "type": "counter",
//                 "value": N}, ...,
//                {"name": ..., "type": "histogram",
//                 "buckets": [{"le": 1, "count": 3}, ...],
//                 "count": N, "sum": X}]}
#ifndef VAQ_OBS_EXPORT_H_
#define VAQ_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace vaq {
namespace obs {

std::string ExportPrometheus(const Snapshot& snapshot);
std::string ExportJson(const Snapshot& snapshot);

// Shared deterministic double rendering: integers print without a
// decimal point, +inf prints "+Inf" (Prometheus) — exporters and the
// bench sidecar all use this one routine.
std::string FormatMetricValue(double v);

// Minimal structural JSON validator (objects, arrays, strings, numbers,
// true/false/null; UTF-8 passthrough). Returns an empty string when
// `text` parses as exactly one JSON value, otherwise a diagnostic with
// the failing byte offset. Used by `vaqctl metrics --selfcheck` and the
// tier-1 ctest entry to prove the JSON export is well-formed without an
// external parser dependency.
std::string JsonLintError(const std::string& text);

// Promlint-style validator for the Prometheus text exposition format.
// Returns an empty string when `text` is a well-formed exposition,
// otherwise a line-numbered diagnostic. Checks: every line is a `# TYPE`
// declaration or a sample; names and label names match the Prometheus
// charset; label values are quoted with valid escapes; sample values
// parse (including +Inf/-Inf/NaN); every sample belongs to a declared
// family (histograms via `_bucket`/`_sum`/`_count`); histogram bucket
// series are cumulative-monotone, end with le="+Inf", and `_count`
// equals the +Inf bucket. Used by `vaqctl metrics --selfcheck`.
std::string PromLintError(const std::string& text);

}  // namespace obs
}  // namespace vaq

#endif  // VAQ_OBS_EXPORT_H_
