// Span-based tracing with a pluggable clock.
//
//   StatusOr<VideoIndex> Ingestor::Ingest(...) const {
//     VAQ_TRACE_SPAN("ingest/total");
//     ...
//   }
//
// A span measures the wall time between its construction and destruction
// and records it into the global registry's `vaq_span_ms{span="<name>"}`
// histogram plus `vaq_span_total{span="<name>"}` counter. Spans nest:
// a thread-local depth counter tracks containment, and when recording is
// enabled the tracer also keeps an in-memory list of closed spans
// (name, depth, start, duration) for tests and debugging.
//
// The clock is pluggable so tracing composes with simulated time: tests
// bind it to a `fault::SimClock` (span durations then reflect the
// deterministic simulated timeline), and one-shot tools bind it to a
// constant to keep metric exports byte-identical across runs. The
// default is the real steady clock.
#ifndef VAQ_OBS_TRACE_H_
#define VAQ_OBS_TRACE_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace vaq {
namespace obs {

// One closed span, innermost-close order.
struct SpanRecord {
  std::string name;
  int depth = 0;  // 0 = outermost on its thread.
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

class Tracer {
 public:
  using ClockFn = std::function<double()>;  // Milliseconds, monotone.

  static Tracer& Global();

  // Replaces the time source; nullptr restores the real steady clock.
  // Typical test binding: tracer.SetClock([&sim] { return sim.now_ms(); }).
  void SetClock(ClockFn clock);
  double NowMs() const;

  // When enabled, closed spans are appended to an internal buffer
  // (bounded at `kMaxRecords`; older spans win).
  void SetRecording(bool on);
  bool recording() const { return recording_; }
  // Drains and returns the record buffer.
  std::vector<SpanRecord> TakeRecords();

  // Internal: called by Span.
  void RecordClosed(const char* name, int depth, double start_ms,
                    double duration_ms);

 private:
  static constexpr size_t kMaxRecords = 4096;

  mutable std::mutex mu_;
  ClockFn clock_;  // Null = steady clock.
  bool recording_ = false;
  std::vector<SpanRecord> records_;
};

// RAII span. `name` must outlive the span (string literals in practice).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_ms_;
  int depth_;
};

}  // namespace obs
}  // namespace vaq

#define VAQ_TRACE_CONCAT_INNER_(a, b) a##b
#define VAQ_TRACE_CONCAT_(a, b) VAQ_TRACE_CONCAT_INNER_(a, b)
// Opens a span covering the rest of the enclosing scope.
#define VAQ_TRACE_SPAN(name) \
  ::vaq::obs::Span VAQ_TRACE_CONCAT_(vaq_trace_span_, __LINE__)(name)

#endif  // VAQ_OBS_TRACE_H_
