// Cost-vs-recall frontier of the ingest-time proxy cascade
// (src/cascade/): the demo corpus is planned and executed at a sweep of
// WITH RECALL targets, reporting the modeled inference bill, the
// surviving-clip fraction and the recall actually achieved against the
// exact top-k.
//
// Costs are the planner's modeled inference bills (the same
// ModelProfile::inference_ms accounting the EXPLAIN ANALYZE profiles
// use), so the frontier is reproducible on any machine.
//
// Expectation (ISSUE acceptance criteria): the frontier is monotone —
// loosening the recall target never raises the modeled cost — and the
// cascade at tau = 0.9 cuts the modeled cost by >= 3x on the demo
// workload. Both are asserted here and recorded in BENCH_cascade.json;
// the process exits nonzero if either fails. The tau = 1.0 point must
// plan exact (no cascade) and return the exact results verbatim.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace {

constexpr int kVideos = 6;
constexpr uint64_t kSeed = 7;
constexpr int64_t kK = 5;

int Run() {
  const StatusOr<tools::CascadeDemo> demo =
      tools::MakeCascadeDemo(kVideos, kSeed);
  if (!demo.ok()) {
    std::fprintf(stderr, "cascade demo setup failed: %s\n",
                 demo.status().ToString().c_str());
    return 1;
  }

  const std::vector<double> targets = {1.0, 0.99, 0.95, 0.9, 0.8, 0.7};
  bench::TablePrinter table(
      "Proxy cascade cost-vs-recall frontier (modeled)",
      {"tau", "plan", "cost_ms", "reduction", "surviving", "predicted",
       "achieved"});
  std::vector<tools::CascadeFrontierPoint> points;
  for (const double tau : targets) {
    const StatusOr<tools::CascadeFrontierPoint> point =
        tools::RunCascadeFrontierPoint(demo.value(), tau, kK);
    if (!point.ok()) {
      std::fprintf(stderr, "frontier point tau=%.2f failed: %s\n", tau,
                   point.status().ToString().c_str());
      return 1;
    }
    const tools::CascadeFrontierPoint& p = point.value();
    points.push_back(p);
    table.AddRow({bench::Fmt("%.2f", p.recall_target),
                  p.use_cascade ? "cascade" : "exact",
                  bench::Fmt("%.0f", p.cascade_cost_ms),
                  bench::Fmt("%.2f", p.cost_reduction),
                  bench::Fmt(p.clips_surviving) + "/" +
                      bench::Fmt(p.clips_total),
                  bench::Fmt("%.3f", p.predicted_recall),
                  bench::Fmt("%.3f", p.achieved_recall)});
  }
  table.Print();

  // The frontier must be monotone: a looser recall target can only
  // lower the modeled cost (the planner falls back to exact whenever
  // the cascade would not win, so cost is capped at full cost too).
  bool monotone_ok = true;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].cascade_cost_ms > points[i - 1].cascade_cost_ms + 1e-9) {
      monotone_ok = false;
    }
  }
  double reduction_tau90 = 0.0;
  bool recall_ok = true;
  for (const tools::CascadeFrontierPoint& p : points) {
    if (p.recall_target == 0.9) reduction_tau90 = p.cost_reduction;
    if (p.achieved_recall + 1e-9 < p.recall_target) recall_ok = false;
  }
  const bool reduction_ok = reduction_tau90 >= 3.0;
  const bool exact_identical =
      !points.empty() && !points.front().use_cascade &&
      points.front().achieved_recall == 1.0;

  FILE* json = std::fopen("BENCH_cascade.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cascade.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  bench::WriteJsonMeta(
      json, kSeed,
      "cascade frontier: tau {1.0,0.99,0.95,0.9,0.8,0.7}, " +
          std::to_string(kVideos) + " videos, k=" + std::to_string(kK));
  std::fprintf(json, "  \"videos\": %d,\n  \"k\": %" PRId64 ",\n", kVideos,
               kK);
  std::fprintf(json, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const tools::CascadeFrontierPoint& p = points[i];
    std::fprintf(json,
                 "    {\"recall_target\": %.4f, \"use_cascade\": %s"
                 ", \"full_cost_ms\": %.3f, \"cascade_cost_ms\": %.3f"
                 ", \"cost_reduction\": %.4f, \"clips_surviving\": %" PRId64
                 ", \"clips_total\": %" PRId64
                 ", \"predicted_recall\": %.4f, \"achieved_recall\": %.4f"
                 ", \"videos_pruned\": %" PRId64
                 ", \"candidates_pruned\": %" PRId64 "}%s\n",
                 p.recall_target, p.use_cascade ? "true" : "false",
                 p.full_cost_ms, p.cascade_cost_ms, p.cost_reduction,
                 p.clips_surviving, p.clips_total, p.predicted_recall,
                 p.achieved_recall, p.videos_pruned, p.candidates_pruned,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"cost_reduction_tau90\": %.4f,\n", reduction_tau90);
  std::fprintf(json, "  \"monotone_ok\": %s,\n",
               monotone_ok ? "true" : "false");
  std::fprintf(json, "  \"reduction_ok\": %s,\n",
               reduction_ok ? "true" : "false");
  std::fprintf(json, "  \"recall_ok\": %s,\n", recall_ok ? "true" : "false");
  std::fprintf(json, "  \"exact_identical\": %s\n",
               exact_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("frontier monotone (cost never rises as tau loosens): %s\n",
              monotone_ok ? "ok" : "FAIL");
  std::printf("modeled cost reduction @tau=0.9: %.2fx (require >= 3.00x): "
              "%s\n",
              reduction_tau90, reduction_ok ? "ok" : "FAIL");
  std::printf("achieved recall >= target at every point: %s\n",
              recall_ok ? "ok" : "FAIL");
  std::printf("tau=1.0 plans exact and returns exact results: %s\n",
              exact_identical ? "ok" : "FAIL");
  return (monotone_ok && reduction_ok && recall_ok && exact_identical) ? 0
                                                                       : 1;
}

}  // namespace
}  // namespace vaq

int main() { return vaq::Run(); }
