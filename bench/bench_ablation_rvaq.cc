// Ablation: RVAQ design choices called out in DESIGN.md.
//
// On the Coffee-and-Cigarettes workload, toggles:
//   * dynamic skip on/off (the §4.3 mechanism);
//   * two-sided vs literal one-sided bound bookkeeping;
//   * exact-score finalization on/off;
// reporting iterations, seeks and modeled runtime for each.
#include <initializer_list>

#include "bench/bench_util.h"
#include "bench/offline_util.h"

int main() {
  using namespace vaq;
  bench::OfflineFixture fixture(
      synth::Scenario::Movie(synth::MovieId::kCoffeeAndCigarettes));
  bench::TablePrinter table(
      "Ablation — RVAQ variants on Coffee and Cigarettes (K=5)",
      {"variant", "iterations", "seeks", "sequential_rows",
       "modeled_runtime_s"});

  struct Variant {
    const char* name;
    offline::RvaqOptions options;
  };
  offline::RvaqOptions base;
  base.k = 5;
  std::vector<Variant> variants;
  variants.push_back({"default (skip, two-sided, exact)", base});
  {
    offline::RvaqOptions v = base;
    v.use_skip = false;
    variants.push_back({"no dynamic skip", v});
  }
  {
    offline::RvaqOptions v = base;
    v.two_sided_bounds = false;
    variants.push_back({"one-sided bounds (paper literal)", v});
  }
  {
    offline::RvaqOptions v = base;
    v.exact_scores = false;
    variants.push_back({"no exact-score finalization", v});
  }
  {
    offline::RvaqOptions v = base;
    v.use_skip = false;
    v.two_sided_bounds = false;
    variants.push_back({"neither skip nor two-sided", v});
  }

  for (const Variant& variant : variants) {
    const offline::TopKResult result =
        offline::Rvaq(&fixture.tables, &fixture.scoring, variant.options)
            .Run();
    table.AddRow({variant.name, bench::Fmt(result.iterations),
                  bench::Fmt(result.accesses.seeks()),
                  bench::Fmt(result.accesses.sequential_rows()),
                  bench::Fmt("%.2f",
                             bench::ModeledRuntimeMs(result.accesses) /
                                 1000.0)});
  }
  table.Print();
  return 0;
}
