// Table 7: offline performance on the YouTube dataset (queries q1 and q2,
// K = 5).
//
// Paper shape per query: FA >> RVAQ-noSkip >> Pq-Traverse > RVAQ on
// runtime; FA >> RVAQ-noSkip >> RVAQ on random accesses.
#include "bench/bench_util.h"
#include "bench/offline_util.h"

int main() {
  using namespace vaq;
  bench::TablePrinter table(
      "Table 7 — offline performance on YouTube (K=5): modeled_runtime_s; "
      "seeks x1000",
      {"query", "FA", "RVAQ-noSkip", "Pq-Traverse", "RVAQ"});
  auto cell = [](const offline::TopKResult& result) {
    return bench::Fmt("%.2f", bench::ModeledRuntimeMs(result.accesses) /
                                  1000.0) +
           "; " + bench::Fmt("%.3f",
                             static_cast<double>(result.accesses.seeks()) /
                                 1000.0);
  };
  for (int qi : {1, 2}) {
    bench::OfflineFixture fixture(synth::Scenario::YouTube(qi));
    const int64_t k = 5;
    table.AddRow({"q" + std::to_string(qi),
                  cell(offline::FaTopK(fixture.tables, fixture.scoring, k)),
                  cell(fixture.RunRvaq(k, /*use_skip=*/false)),
                  cell(offline::PqTraverse(fixture.tables, fixture.scoring,
                                           k)),
                  cell(fixture.RunRvaq(k))});
  }
  table.Print();
  return 0;
}
