// §5.2 "Runtime Superiority": online query time decomposition.
//
// Paper claims: (1) >98% of SVAQ/SVAQD query latency is model inference
// (168.7 of 171.8 minutes for q1); (2) predicate short-circuiting saves
// inference; (3) an end-to-end model fine-tuned per query costs >60 hours
// to train for a <0.05 F1 gain, so composing black-box models is the only
// scalable design.
//
// Inference is priced with the profiles' per-invocation latencies
// (ModelProfile::inference_ms), so the decomposition reproduces at any
// hardware scale.
#include "bench/bench_util.h"
#include "detect/models.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

int main() {
  using namespace vaq;
  const synth::Scenario scenario = synth::Scenario::YouTube(1);

  bench::TablePrinter table(
      "§5.2 — online runtime decomposition, q1 (washing dishes)",
      {"configuration", "algorithm_s", "inference_s", "total_s",
       "inference_share", "detector_inf", "recognizer_inf"});

  for (const bool short_circuit : {true, false}) {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqdOptions options;
    options.base.short_circuit = short_circuit;
    const online::OnlineResult result =
        online::Svaqd(scenario.query(), scenario.layout(), options)
            .Run(models.detector.get(), models.recognizer.get());
    const double inference_s = models.TotalSimulatedMs() / 1000.0;
    const double algorithm_s = result.algorithm_wall_ms / 1000.0;
    const double total_s = inference_s + algorithm_s;
    table.AddRow({short_circuit ? "SVAQD (short-circuit)" : "SVAQD (full)",
                  bench::Fmt("%.2f", algorithm_s),
                  bench::Fmt("%.1f", inference_s),
                  bench::Fmt("%.1f", total_s),
                  bench::Fmt("%.3f%%", 100.0 * inference_s / total_s),
                  bench::Fmt(result.detector_stats.inferences),
                  bench::Fmt(result.recognizer_stats.inferences)});
  }

  // The end-to-end alternative: fine-tuning an I3D-style network for this
  // exact (action, objects) combination. The paper measured >60 hours; we
  // model it as epochs over the video at training cost ~3x inference.
  {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    const double per_shot_train_ms =
        3.0 * detect::ModelProfile::I3d().inference_ms;
    const double epochs = 50;
    const double train_s = epochs *
                           static_cast<double>(scenario.layout().NumShots()) *
                           per_shot_train_ms / 1000.0;
    (void)models;
    table.AddRow({"end-to-end model (train+infer)", "-",
                  bench::Fmt("%.0f", train_s), bench::Fmt("%.0f", train_s),
                  "-", "-", "-"});
  }
  table.Print();
  std::printf(
      "\nNote: the end-to-end row covers ONE query's model; every new\n"
      "predicate combination would need its own training run, which is the\n"
      "paper's scalability argument for composing black-box models.\n");
  return 0;
}
