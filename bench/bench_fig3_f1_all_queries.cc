// Figure 3: F1 of SVAQ and SVAQD for all twelve YouTube queries (Table 1).
//
// SVAQ uses the best fixed p0 from the Figure 2 sweep; SVAQD starts from
// the same value but adapts. Paper shape: SVAQD >= SVAQ on every query,
// both in the 0.77-0.93 band.
#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

int main() {
  using namespace vaq;
  // Our simulated detectors peak near p0 = 1e-2 (the paper's real models
  // peaked at 1e-4; see EXPERIMENTS.md).
  const double kBestP0 = 1e-2;
  bench::TablePrinter table(
      "Figure 3 — F1 of SVAQ and SVAQD on q1..q12",
      {"query", "action", "SVAQ_F1", "SVAQD_F1", "truth_seqs"});
  double svaq_sum = 0;
  double svaqd_sum = 0;
  for (int qi = 1; qi <= 12; ++qi) {
    const synth::Scenario scenario = synth::Scenario::YouTube(qi);
    const IntervalSet truth = scenario.TruthClips();

    detect::ModelBundle m1 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqOptions svaq_options;
    svaq_options.p0_object = kBestP0;
    svaq_options.p0_action = kBestP0;
    const double svaq_f1 =
        eval::SequenceF1(
            online::Svaq(scenario.query(), scenario.layout(), svaq_options)
                .Run(m1.detector.get(), m1.recognizer.get())
                .sequences,
            truth)
            .f1;

    detect::ModelBundle m2 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqdOptions svaqd_options;
    svaqd_options.base.p0_object = kBestP0;
    svaqd_options.base.p0_action = kBestP0;
    const double svaqd_f1 =
        eval::SequenceF1(
            online::Svaqd(scenario.query(), scenario.layout(), svaqd_options)
                .Run(m2.detector.get(), m2.recognizer.get())
                .sequences,
            truth)
            .f1;

    svaq_sum += svaq_f1;
    svaqd_sum += svaqd_f1;
    table.AddRow(
        {"q" + std::to_string(qi),
         scenario.vocab().ActionTypeName(scenario.query().action),
         bench::Fmt("%.3f", svaq_f1), bench::Fmt("%.3f", svaqd_f1),
         bench::Fmt(static_cast<int64_t>(truth.size()))});
  }
  table.AddRow({"mean", "-", bench::Fmt("%.3f", svaq_sum / 12),
                bench::Fmt("%.3f", svaqd_sum / 12), "-"});
  table.Print();
  return 0;
}
