// Shared setup for the offline benches (Tables 6-8): ingest a scenario and
// bind its query.
#ifndef VAQ_BENCH_OFFLINE_UTIL_H_
#define VAQ_BENCH_OFFLINE_UTIL_H_

#include <memory>

#include "detect/models.h"
#include "offline/baselines.h"
#include "offline/ingest.h"
#include "offline/rvaq.h"
#include "synth/scenario.h"

namespace vaq {
namespace bench {

// Holds everything an offline experiment needs, with stable addresses.
struct OfflineFixture {
  synth::Scenario scenario;
  offline::PaperScoring scoring;
  storage::VideoIndex index;
  offline::QueryTables tables;
  IntervalSet pq;

  explicit OfflineFixture(synth::Scenario sc, uint64_t model_seed = 7)
      : scenario(std::move(sc)) {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), model_seed);
    offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                               offline::IngestOptions{});
    index = std::move(ingestor.Ingest(scenario.truth(), models)).value();
    auto tables_or = offline::QueryTables::Bind(index, scenario.query(),
                                                scenario.vocab());
    VAQ_CHECK(tables_or.ok()) << tables_or.status().ToString();
    tables = std::move(tables_or).value();
    pq = tables.ComputePq();
  }

  offline::TopKResult RunRvaq(int64_t k, bool use_skip = true) const {
    offline::RvaqOptions options;
    options.k = k;
    options.use_skip = use_skip;
    return offline::Rvaq(&tables, &scoring, options).Run();
  }
};

}  // namespace bench
}  // namespace vaq

#endif  // VAQ_BENCH_OFFLINE_UTIL_H_
