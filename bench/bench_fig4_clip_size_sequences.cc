// Figure 4: number of result sequences found by SVAQ/SVAQD as the clip
// size varies.
//
// Paper shape: smaller clips fragment results into more (shorter)
// sequences; larger clips merge them; the total frame mass stays stable
// (Figure 5 checks the latter).
#include <initializer_list>

#include "bench/bench_util.h"
#include "detect/models.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

void RunQuery(const char* label, const synth::Scenario& base,
              const std::string& action,
              const std::vector<std::string>& objects) {
  bench::TablePrinter table(
      std::string("Figure 4") + label +
          " — number of result sequences vs clip size",
      {"clip_frames", "SVAQ_seqs", "SVAQD_seqs", "SVAQ_frames",
       "SVAQD_frames"});
  for (int64_t clip_frames : {50, 100, 200, 400, 800}) {
    const synth::Scenario resized = base.WithClipFrames(clip_frames);
    auto scenario_or = resized.WithQuery(action, objects);
    const synth::Scenario& scenario = scenario_or.value();
    detect::ModelBundle m1 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqOptions svaq_options;
    svaq_options.p0_object = 1e-2;
    svaq_options.p0_action = 1e-2;
    const online::OnlineResult svaq =
        online::Svaq(scenario.query(), scenario.layout(), svaq_options)
            .Run(m1.detector.get(), m1.recognizer.get());
    detect::ModelBundle m2 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    const online::OnlineResult svaqd =
        online::Svaqd(scenario.query(), scenario.layout(),
                      online::SvaqdOptions{})
            .Run(m2.detector.get(), m2.recognizer.get());
    table.AddRow(
        {bench::Fmt(clip_frames),
         bench::Fmt(static_cast<int64_t>(svaq.sequences.size())),
         bench::Fmt(static_cast<int64_t>(svaqd.sequences.size())),
         bench::Fmt(scenario.layout()
                        .ClipsToFrames(svaq.sequences)
                        .TotalLength()),
         bench::Fmt(scenario.layout()
                        .ClipsToFrames(svaqd.sequences)
                        .TotalLength())});
  }
  table.Print();
}

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  RunQuery("a", synth::Scenario::YouTube(2), "blowing leaves", {"car"});
  RunQuery("b", synth::Scenario::YouTube(1), "washing dishes", {"faucet"});
  return 0;
}
