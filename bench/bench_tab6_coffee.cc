// Table 6: offline performance on the movie "Coffee and Cigarettes"
// (q: smoking ∧ wine glass ∧ cup) as K varies.
//
// For each algorithm the bench reports the number of random (seek-like)
// accesses — the paper's primary metric — plus the modeled disk runtime
// under the bench_util.h cost model and the measured in-memory wall time.
//
// Paper shape: FA worst; RVAQ-noSkip in between; Pq-Traverse constant in
// K; RVAQ cheapest and growing with K.
#include <initializer_list>

#include "bench/bench_util.h"
#include "bench/offline_util.h"

int main() {
  using namespace vaq;
  bench::OfflineFixture fixture(
      synth::Scenario::Movie(synth::MovieId::kCoffeeAndCigarettes));
  std::printf("Pq: %zu candidate sequences, %lld clips, %lld total clips\n",
              fixture.pq.size(),
              static_cast<long long>(fixture.pq.TotalLength()),
              static_cast<long long>(fixture.index.num_clips));

  bench::TablePrinter table(
      "Table 6 — performance on Coffee and Cigarettes "
      "(modeled_runtime_s; seeks x1000)",
      {"method", "K=1", "K=5", "K=9", "K=11", "K=13", "K=15"});

  auto cell = [](const offline::TopKResult& result) {
    return bench::Fmt("%.2f", bench::ModeledRuntimeMs(result.accesses) /
                                  1000.0) +
           "; " + bench::Fmt("%.3f",
                             static_cast<double>(result.accesses.seeks()) /
                                 1000.0);
  };

  const std::vector<int64_t> ks = {1, 5, 9, 11, 13, 15};
  std::vector<std::string> fa_row = {"FA"};
  std::vector<std::string> noskip_row = {"RVAQ-noSkip"};
  std::vector<std::string> traverse_row = {"Pq-Traverse"};
  std::vector<std::string> rvaq_row = {"RVAQ"};
  for (const int64_t k : ks) {
    fa_row.push_back(cell(offline::FaTopK(fixture.tables, fixture.scoring,
                                          k)));
    noskip_row.push_back(cell(fixture.RunRvaq(k, /*use_skip=*/false)));
    traverse_row.push_back(
        cell(offline::PqTraverse(fixture.tables, fixture.scoring, k)));
    rvaq_row.push_back(cell(fixture.RunRvaq(k)));
  }
  table.AddRow(fa_row);
  table.AddRow(noskip_row);
  table.AddRow(traverse_row);
  table.AddRow(rvaq_row);
  table.Print();
  return 0;
}
