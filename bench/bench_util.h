// Shared helpers for the experiment harness.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation section (§5), printing the same rows/series the paper reports
// plus a machine-readable CSV block. Absolute numbers come from the
// simulated substrate (see DESIGN.md §1), so the *shape* — who wins, by
// roughly what factor, where crossovers fall — is the reproduction target;
// EXPERIMENTS.md records paper-vs-measured values side by side.
#ifndef VAQ_BENCH_BENCH_UTIL_H_
#define VAQ_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/report.h"
#include "storage/access_counter.h"

// Git revision the binary was built from; the build system injects it
// (see bench/CMakeLists.txt), tarball builds fall back to "unknown".
#ifndef VAQ_GIT_REV
#define VAQ_GIT_REV "unknown"
#endif

namespace vaq {
namespace bench {

// Disk cost model used to put the offline algorithms on the paper's
// runtime scale (Tables 6-8): a seek-incurring access (random lookup or
// the start of a range scan) costs kSeekMs; a sequentially streamed row
// costs kRowMs. The 500:1 ratio reflects magnetic storage, which the
// paper's runtime ordering (random-access-bound FA slowest, sequential
// Pq-Traverse fast despite touching every clip) presupposes.
inline constexpr double kSeekMs = 5.0;
inline constexpr double kRowMs = 0.01;

inline double ModeledRuntimeMs(const storage::AccessCounter& accesses) {
  return accesses.ModeledMs(kSeekMs, kRowMs);
}

// Simple fixed-width table printer with a trailing CSV block.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::vector<size_t> widths(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(columns_, widths);
    std::string rule;
    for (size_t i = 0; i < columns_.size(); ++i) {
      rule += std::string(widths[i] + 2, '-');
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
    // CSV block for downstream plotting.
    std::printf("csv,%s\n", Join(columns_).c_str());
    for (const auto& row : rows_) {
      std::printf("csv,%s\n", Join(row).c_str());
    }
    std::fflush(stdout);

    // Machine-readable sidecar (rows + the global metric registry
    // snapshot), written only when VAQ_METRICS_SIDECAR names a directory
    // — see obs/report.h. Interactive runs stay file-free.
    obs::ReportCollector report(FileStem(title_));
    report.AddField("title", title_);
    report.SetColumns(columns_);
    for (const auto& row : rows_) report.AddRow(row);
    report.WriteFromEnv();
  }

 private:
  // Collapses a table title into a filesystem-safe sidecar stem, e.g.
  // "Resilience — F1 vs outage rate" -> "resilience_f1_vs_outage_rate".
  static std::string FileStem(const std::string& title) {
    std::string out;
    bool pending_sep = false;
    for (const char c : title) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        if (pending_sep && !out.empty()) out += '_';
        pending_sep = false;
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      } else {
        pending_sep = true;
      }
    }
    return out.empty() ? "table" : out;
  }

  static std::string Join(const std::vector<std::string>& cells) {
    std::string out;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ",";
      out += cells[i];
    }
    return out;
  }

  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Shared metadata header for BENCH_*.json artifacts. Every file opens
// with the same "meta" object — the seed that drove the run, the git
// revision of the build, and a one-line config summary — so artifacts
// from different binaries (and different checkouts) are traceable to the
// exact build and inputs that produced them. Call immediately after
// printing the opening '{'.
inline void WriteJsonMeta(std::FILE* json, uint64_t seed,
                          const std::string& config) {
  std::fprintf(json,
               "  \"meta\": {\"seed\": %llu, \"git_rev\": \"%s\", "
               "\"config\": \"%s\"},\n",
               static_cast<unsigned long long>(seed), VAQ_GIT_REV,
               config.c_str());
}

inline std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

inline std::string Fmt(int64_t value) { return std::to_string(value); }

}  // namespace bench
}  // namespace vaq

#endif  // VAQ_BENCH_BENCH_UTIL_H_
