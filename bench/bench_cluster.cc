// Sharded scatter–gather scaling sweep: modeled answer time of the
// repository-wide ranked query across shard counts and replica counts
// (src/cluster/), checked against the single-node RVAQ reference.
//
// Time is reported on the simulated timeline — the coordinator's virtual
// clock integrates per-shard modeled scan cost (the same 5 ms seek /
// 0.01 ms row disk model as the offline benches) plus simulated network
// latency — so the sweep is reproducible on any machine. Replicas are
// passive followers here (no failover is staged), so they must change
// neither the answer nor the gather schedule, only the node count.
//
// Expectation (ISSUE acceptance criteria): the merged top-k is identical
// to single-node RVAQ for every configuration, and the modeled
// scatter–gather speedup at 8 shards is >= 3x. Both are asserted here
// and recorded in BENCH_cluster.json; the process exits nonzero if
// either fails.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/coordinator.h"
#include "detect/models.h"
#include "obs/trace.h"
#include "offline/ingest.h"
#include "offline/repository.h"
#include "offline/scoring.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace {

constexpr int kVideos = 16;
constexpr uint64_t kSeed = 7;
constexpr int64_t kK = 5;
const char kAction[] = "running";

struct ConfigResult {
  int shards = 0;
  int replicas = 0;
  bool identical = false;
  double answer_ms = 0.0;
  double single_node_ms = 0.0;
  double speedup = 0.0;
  int64_t batches_consumed = 0;
  int64_t batches_pruned = 0;
  int64_t failovers = 0;
  int64_t net_messages = 0;
  int64_t net_bytes = 0;
};

std::string DescribeTop(
    const std::vector<offline::RepositoryRankedSequence>& top) {
  std::string out;
  for (const offline::RepositoryRankedSequence& entry : top) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s %s %.17g\n", entry.video.c_str(),
                  entry.sequence.clips.ToString().c_str(),
                  offline::RankedMergeScore(entry.sequence));
    out += line;
  }
  return out;
}

int Run() {
  obs::Tracer::Global().SetClock([] { return 0.0; });
  offline::PaperScoring scoring;
  offline::Repository repository;
  for (int i = 0; i < kVideos; ++i) {
    synth::Scenario scenario = tools::DemoScenario(i);
    detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(
        scenario.truth(), kSeed + static_cast<uint64_t>(i));
    offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                               offline::IngestOptions{});
    auto index = ingestor.Ingest(scenario.truth(), models);
    if (!index.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    repository.Add("vid" + std::to_string(i), std::move(index.value()));
  }

  offline::RvaqOptions rvaq;
  rvaq.k = kK;
  auto single = repository.TopK(kAction, {"dog"}, scoring, rvaq);
  if (!single.ok()) {
    std::fprintf(stderr, "single-node RVAQ failed: %s\n",
                 single.status().ToString().c_str());
    return 1;
  }
  const std::string reference = DescribeTop(single.value().top);

  bench::TablePrinter table(
      "Cluster scatter-gather scaling (modeled)",
      {"shards", "replicas", "identical", "answer_ms", "single_node_ms",
       "speedup", "batches", "pruned", "net_msgs"});
  std::vector<ConfigResult> rows;
  for (const int shards : {1, 2, 4, 8}) {
    for (const int replicas : {0, 1}) {
      cluster::ClusterOptions options;
      options.num_shards = shards;
      options.num_replicas = replicas;
      cluster::Coordinator coordinator(&repository, options);
      auto clustered = coordinator.TopK(kAction, {"dog"}, scoring, rvaq);
      if (!clustered.ok()) {
        std::fprintf(stderr, "cluster TopK failed: %s\n",
                     clustered.status().ToString().c_str());
        return 1;
      }
      const cluster::ClusterTopKResult& r = clustered.value();
      ConfigResult row;
      row.shards = shards;
      row.replicas = replicas;
      row.identical = DescribeTop(r.merged.top) == reference;
      row.answer_ms = r.answer_ms;
      row.single_node_ms = r.single_node_ms;
      row.speedup = r.answer_ms > 0 ? r.single_node_ms / r.answer_ms : 0.0;
      row.batches_consumed = r.batches_consumed;
      row.batches_pruned = r.batches_pruned;
      row.failovers = r.failovers;
      row.net_messages = r.net.messages;
      row.net_bytes = r.net.bytes;
      rows.push_back(row);
      table.AddRow({bench::Fmt(static_cast<int64_t>(shards)),
                    bench::Fmt(static_cast<int64_t>(replicas)),
                    row.identical ? "yes" : "NO",
                    bench::Fmt("%.1f", row.answer_ms),
                    bench::Fmt("%.1f", row.single_node_ms),
                    bench::Fmt("%.2f", row.speedup),
                    bench::Fmt(row.batches_consumed),
                    bench::Fmt(row.batches_pruned),
                    bench::Fmt(row.net_messages)});
    }
  }
  table.Print();
  obs::Tracer::Global().SetClock(nullptr);

  bool all_identical = true;
  double speedup_8 = 0.0;
  for (const ConfigResult& r : rows) {
    all_identical = all_identical && r.identical && r.failovers == 0;
    if (r.shards == 8 && r.replicas == 0) speedup_8 = r.speedup;
  }
  const bool speedup_ok = speedup_8 >= 3.0;

  FILE* json = std::fopen("BENCH_cluster.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cluster.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  bench::WriteJsonMeta(json, kSeed,
                       "cluster sweep: shards {1,2,4,8} x replicas {0,1}, " +
                           std::to_string(kVideos) + " videos, k=" +
                           std::to_string(kK));
  std::fprintf(json, "  \"videos\": %d,\n  \"k\": %" PRId64 ",\n", kVideos,
               kK);
  std::fprintf(json, "  \"configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigResult& r = rows[i];
    std::fprintf(json,
                 "    {\"shards\": %d, \"replicas\": %d, \"identical\": %s"
                 ", \"answer_ms\": %.3f, \"single_node_ms\": %.3f"
                 ", \"speedup\": %.4f, \"batches_consumed\": %" PRId64
                 ", \"batches_pruned\": %" PRId64 ", \"net_messages\": %" PRId64
                 ", \"net_bytes\": %" PRId64 "}%s\n",
                 r.shards, r.replicas, r.identical ? "true" : "false",
                 r.answer_ms, r.single_node_ms, r.speedup, r.batches_consumed,
                 r.batches_pruned, r.net_messages, r.net_bytes,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_8_shards\": %.4f,\n", speedup_8);
  std::fprintf(json, "  \"speedup_ok\": %s,\n", speedup_ok ? "true" : "false");
  std::fprintf(json, "  \"all_identical\": %s\n",
               all_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("top-k identical to single-node RVAQ in every config: %s\n",
              all_identical ? "ok" : "FAIL");
  std::printf("modeled speedup @8 shards: %.2fx (require >= 3.00x): %s\n",
              speedup_8, speedup_ok ? "ok" : "FAIL");
  return (all_identical && speedup_ok) ? 0 : 1;
}

}  // namespace
}  // namespace vaq

int main() { return vaq::Run(); }
