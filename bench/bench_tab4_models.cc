// Table 4: F1 of SVAQ and SVAQD under different detection model stacks for
// q:{a=blowing leaves; o1=car}.
//
// Paper shape: MaskRCNN+I3D > YOLOv3+I3D; Ideal models give F1 = 1.00
// (the residual error is entirely attributable to model noise).
#include <functional>

#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace {

// A harder variant of the blowing-leaves video: shorter occurrences and
// looser object coupling make detector quality matter (the q2 preset's
// long clean segments saturate every stack at F1 = 1).
vaq::synth::Scenario HardScenario() {
  using namespace vaq::synth;
  ScenarioSpec spec;
  spec.name = "tab4_hard";
  spec.minutes = 52;
  spec.fps = 30;
  spec.seed = 4242;
  ActionTrackSpec action;
  action.name = "blowing leaves";
  action.duty = 0.22;
  action.mean_len_frames = 450;  // ~4-5 clips per occurrence.
  spec.actions.push_back(action);
  ObjectTrackSpec car;
  car.name = "car";
  car.background_duty = 0.08;
  car.mean_len_frames = 500;
  car.coupled_action = "blowing leaves";
  car.cover_action_prob = 0.85;
  spec.objects.push_back(car);
  return Scenario::FromSpec(spec, "blowing leaves", {"car"});
}

}  // namespace

int main() {
  using namespace vaq;
  const synth::Scenario scenario = HardScenario();
  const IntervalSet truth = scenario.TruthClips();

  struct Stack {
    const char* name;
    std::function<detect::ModelBundle()> make;
  };
  const Stack stacks[] = {
      {"MaskRCNN+I3D",
       [&] { return detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7); }},
      {"YOLOv3+I3D",
       [&] { return detect::ModelBundle::YoloI3d(scenario.truth(), 7); }},
      {"Ideal Models",
       [&] { return detect::ModelBundle::Ideal(scenario.truth(), 7); }},
  };

  bench::TablePrinter table(
      "Table 4 — F1 with different detection models, q:{a=blowing leaves; "
      "o1=car}",
      {"models", "SVAQ_F1", "SVAQD_F1"});
  for (const Stack& stack : stacks) {
    detect::ModelBundle m1 = stack.make();
    online::SvaqOptions svaq_options;
    svaq_options.p0_object = 1e-2;
    svaq_options.p0_action = 1e-2;
    const double svaq_f1 =
        eval::SequenceF1(
            online::Svaq(scenario.query(), scenario.layout(), svaq_options)
                .Run(m1.detector.get(), m1.recognizer.get())
                .sequences,
            truth)
            .f1;
    detect::ModelBundle m2 = stack.make();
    const double svaqd_f1 =
        eval::SequenceF1(online::Svaqd(scenario.query(), scenario.layout(),
                                       online::SvaqdOptions{})
                             .Run(m2.detector.get(), m2.recognizer.get())
                             .sequences,
                         truth)
            .f1;
    table.AddRow({stack.name, bench::Fmt("%.2f", svaq_f1),
                  bench::Fmt("%.2f", svaqd_f1)});
  }
  table.Print();
  return 0;
}
