// Micro-benchmarks (google-benchmark) of the library's hot kernels:
// scan-statistic evaluation, critical-value search, interval algebra,
// score-table access paths and the simulated detector.
#include <benchmark/benchmark.h>

#include "common/interval.h"
#include "common/rng.h"
#include "detect/models.h"
#include "scanstat/critical_value.h"
#include "scanstat/naus.h"
#include "storage/paged_table.h"
#include "storage/score_table.h"
#include "synth/generator.h"

namespace vaq {
namespace {

void BM_ScanTailProbability(benchmark::State& state) {
  const int64_t w = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scanstat::ScanStatisticTailProbability(w / 5, 0.02, w, 1000.0));
  }
}
BENCHMARK(BM_ScanTailProbability)->Arg(10)->Arg(50)->Arg(200);

void BM_CriticalValue(benchmark::State& state) {
  scanstat::ScanConfig config;
  config.window = state.range(0);
  config.horizon = 100000;
  config.alpha = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanstat::CriticalValue(0.02, config));
  }
}
BENCHMARK(BM_CriticalValue)->Arg(10)->Arg(100)->Arg(500);

void BM_IntervalSetIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<Interval> a;
  std::vector<Interval> b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    const int64_t lo = i * 20 + static_cast<int64_t>(rng.UniformInt(8ul));
    a.push_back(Interval(lo, lo + 6));
    const int64_t lo2 = i * 20 + static_cast<int64_t>(rng.UniformInt(8ul));
    b.push_back(Interval(lo2, lo2 + 9));
  }
  const IntervalSet sa = IntervalSet::FromIntervals(a);
  const IntervalSet sb = IntervalSet::FromIntervals(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.Intersect(sb));
  }
}
BENCHMARK(BM_IntervalSetIntersect)->Arg(100)->Arg(10000);

void BM_ScoreTableAccess(benchmark::State& state) {
  Rng rng(2);
  std::vector<storage::ScoreTable::Row> rows;
  const int64_t n = 100000;
  for (int64_t c = 0; c < n; ++c) {
    rows.push_back({c, rng.UniformDouble(0, 100)});
  }
  const storage::ScoreTable table =
      std::move(storage::ScoreTable::Build(std::move(rows))).value();
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.RandomScore(i % n));
    ++i;
  }
}
BENCHMARK(BM_ScoreTableAccess);

void BM_DetectorMaxScore(benchmark::State& state) {
  synth::ScenarioSpec spec;
  spec.minutes = 10;
  spec.seed = 3;
  synth::ActionTrackSpec action;
  action.name = "a";
  spec.actions.push_back(action);
  synth::ObjectTrackSpec obj;
  obj.name = "o";
  obj.background_duty = 0.2;
  spec.objects.push_back(obj);
  static Vocabulary vocab;
  static const synth::GroundTruth truth = synth::Generate(spec, vocab);
  const detect::ObjectDetector detector(&truth,
                                        detect::ModelProfile::MaskRcnn(), 7);
  FrameIndex f = 0;
  const int64_t frames = truth.layout().num_frames();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.MaxScore(0, f));
    f = (f + 1) % frames;
  }
}
BENCHMARK(BM_DetectorMaxScore);

void BM_PagedRandomScore(benchmark::State& state) {
  static const std::string path = [] {
    Rng rng(4);
    std::vector<storage::ScoreTable::Row> rows;
    for (int64_t c = 0; c < 50000; ++c) {
      rows.push_back({c, rng.UniformDouble(0, 100)});
    }
    const storage::ScoreTable table =
        std::move(storage::ScoreTable::Build(std::move(rows))).value();
    const std::string p = "/tmp/vaq_bench_paged.pgd";
    VAQ_CHECK_OK(storage::WritePagedTable(table, p));
    return p;
  }();
  storage::PageCache cache(state.range(0), 4096);
  auto paged = std::move(storage::PagedScoreTable::Open(path, &cache)).value();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paged->RandomScore(
        static_cast<ClipIndex>(rng.UniformInt(uint64_t{50000}))));
  }
  state.counters["fetch_rate"] =
      static_cast<double>(cache.fetches()) /
      static_cast<double>(std::max<int64_t>(cache.fetches() + cache.hits(),
                                            1));
}
BENCHMARK(BM_PagedRandomScore)->Arg(4)->Arg(64)->Arg(1024);

void BM_PagedRangeScan(benchmark::State& state) {
  static const std::string path = "/tmp/vaq_bench_paged.pgd";
  storage::PageCache cache(64, 4096);
  auto paged = std::move(storage::PagedScoreTable::Open(path, &cache)).value();
  std::vector<double> out;
  int64_t lo = 0;
  for (auto _ : state) {
    out.clear();
    paged->RangeScores(lo, lo + 499, &out);
    benchmark::DoNotOptimize(out.data());
    lo = (lo + 500) % 49000;
  }
}
BENCHMARK(BM_PagedRangeScan);

}  // namespace
}  // namespace vaq

BENCHMARK_MAIN();
