// Million-user front door under open-loop multi-tenant load
// (src/traffic/): sustained throughput and per-tenant p99 vs tenant
// count, a simulated-day scale point, and the fairness/isolation
// experiment the ISSUE acceptance criteria pin down.
//
// Everything runs on virtual time against probed per-preset modeled
// costs, so the numbers are a pure function of the seeds and reproduce
// bit-for-bit on any machine.
//
// Expectations (asserted, recorded in BENCH_traffic.json, nonzero exit
// on failure):
//   * isolation_ok  — with one tenant offering 10x its rate, every
//     other tenant's p99 stays within 10% of the no-abuse baseline;
//   * shed_ok       — the abusive tenant is actually shed, both at the
//     front door and with kResourceExhausted on the serve path;
//   * bytes_identical — no other tenant's serve-path result bytes move
//     when the abuser shows up;
//   * deterministic_ok — the whole abusive run (report + result bytes)
//     is byte-identical when repeated with the same seed.
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace {

constexpr uint64_t kSeed = 33;

// Moderate-load sweep configuration (per-tenant).
tools::TrafficDemoSpec SweepSpec(int tenants) {
  tools::TrafficDemoSpec spec;
  spec.num_tenants = tenants;
  spec.duration_min = 2.0;
  spec.seed = kSeed;
  spec.num_workers = 8;
  spec.base_qps = 20.0;
  spec.queue_quota = 4;
  return spec;
}

// Isolation experiment: quota (4) below the worker count (16), so the
// abuser can never hold more than a quarter of the service slots, and a
// rate high enough that 10x of it exceeds what 4 slots can drain — the
// abuser must be shed.
tools::TrafficDemoSpec IsolationSpec(int abusive_tenant) {
  tools::TrafficDemoSpec spec;
  spec.num_tenants = 4;
  spec.duration_min = 2.0;
  spec.seed = kSeed;
  spec.num_workers = 16;
  spec.base_qps = 50.0;
  spec.queue_quota = 4;
  spec.abusive_tenant = abusive_tenant;
  spec.record_metrics = false;  // Three runs share the process registry.
  return spec;
}

struct SweepPoint {
  int tenants = 0;
  double sustained_qps = 0.0;
  double mean_p99_ms = 0.0;
  double max_p99_ms = 0.0;
  int64_t completed = 0;
  int64_t shed = 0;
};

int Run() {
  // --- Throughput / p99 vs tenant count ---------------------------------
  bench::TablePrinter table(
      "Front door: sustained QPS and per-tenant p99 vs tenant count",
      {"tenants", "offered", "completed", "shed", "qps", "mean_p99_ms",
       "max_p99_ms"});
  std::vector<SweepPoint> points;
  for (const int tenants : {2, 4, 8}) {
    const StatusOr<tools::TrafficDemoResult> r =
        tools::RunTrafficDemo(SweepSpec(tenants));
    if (!r.ok()) {
      std::fprintf(stderr, "sweep tenants=%d failed: %s\n", tenants,
                   r.status().ToString().c_str());
      return 1;
    }
    SweepPoint point;
    point.tenants = tenants;
    point.sustained_qps = r->report.sustained_qps;
    point.completed = r->report.completed;
    point.shed = r->report.shed;
    for (const traffic::TenantReport& t : r->report.tenants) {
      point.mean_p99_ms += t.p99_ms;
      point.max_p99_ms = std::max(point.max_p99_ms, t.p99_ms);
    }
    point.mean_p99_ms /= static_cast<double>(tenants);
    points.push_back(point);
    table.AddRow({bench::Fmt(static_cast<int64_t>(tenants)),
                  bench::Fmt(r->report.offered),
                  bench::Fmt(point.completed), bench::Fmt(point.shed),
                  bench::Fmt("%.2f", point.sustained_qps),
                  bench::Fmt("%.3f", point.mean_p99_ms),
                  bench::Fmt("%.3f", point.max_p99_ms)});
  }
  table.Print();

  // --- Scale point: one simulated day, millions of sessions -------------
  tools::TrafficDemoSpec day = SweepSpec(8);
  day.duration_min = 1440.0;  // 24 virtual hours.
  day.base_qps = 2.0;
  const StatusOr<tools::TrafficDemoResult> day_r = tools::RunTrafficDemo(day);
  if (!day_r.ok()) {
    std::fprintf(stderr, "day-scale run failed: %s\n",
                 day_r.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated day: %" PRId64 " sessions offered, %" PRId64
              " completed, sustained %.2f qps%s\n",
              day_r->report.offered, day_r->report.completed,
              day_r->report.sustained_qps,
              day_r->truncated ? " (TRUNCATED)" : "");

  // --- Fairness / isolation under a 10x abusive tenant -------------------
  constexpr int kAbusive = 1;
  tools::TrafficDemoSpec base_spec = IsolationSpec(-1);
  const StatusOr<tools::TrafficDemoResult> base =
      tools::RunTrafficDemo(base_spec);
  const StatusOr<tools::TrafficDemoResult> abuse =
      tools::RunTrafficDemo(IsolationSpec(kAbusive));
  const StatusOr<tools::TrafficDemoResult> abuse2 =
      tools::RunTrafficDemo(IsolationSpec(kAbusive));
  if (!base.ok() || !abuse.ok() || !abuse2.ok()) {
    std::fprintf(stderr, "isolation runs failed\n");
    return 1;
  }

  bool isolation_ok = true;
  bool bytes_identical = true;
  double p99_delta_max_pct = 0.0;
  bench::TablePrinter iso(
      "Isolation: tenant t1 at 10x, every other tenant's p99 must hold",
      {"tenant", "base_p99_ms", "abuse_p99_ms", "delta_pct", "base_shed",
       "abuse_shed"});
  for (size_t i = 0; i < base->report.tenants.size(); ++i) {
    const traffic::TenantReport& b = base->report.tenants[i];
    const traffic::TenantReport& a = abuse->report.tenants[i];
    const double delta_pct =
        b.p99_ms > 0.0 ? 100.0 * std::fabs(a.p99_ms - b.p99_ms) / b.p99_ms
                       : 0.0;
    iso.AddRow({b.tenant, bench::Fmt("%.3f", b.p99_ms),
                bench::Fmt("%.3f", a.p99_ms), bench::Fmt("%.2f", delta_pct),
                bench::Fmt(b.shed), bench::Fmt(a.shed)});
    if (static_cast<int>(i) == kAbusive) continue;
    p99_delta_max_pct = std::max(p99_delta_max_pct, delta_pct);
    if (delta_pct > 10.0) isolation_ok = false;
    if (abuse->tenant_results[i] != base->tenant_results[i]) {
      bytes_identical = false;
    }
  }
  iso.Print();

  const int64_t abusive_shed =
      abuse->report.tenants[static_cast<size_t>(kAbusive)].shed;
  const bool shed_ok = abusive_shed > 0 && abuse->tenant_quota_sheds > 0;
  const bool deterministic_ok =
      abuse->report.ToString() == abuse2->report.ToString() &&
      abuse->tenant_results == abuse2->tenant_results;

  FILE* json = std::fopen("BENCH_traffic.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_traffic.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  bench::WriteJsonMeta(
      json, kSeed,
      "front door: tenant sweep {2,4,8} @20qps, simulated day, isolation "
      "@10x abuse");
  std::fprintf(json, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(json,
                 "    {\"tenants\": %d, \"sustained_qps\": %.4f"
                 ", \"mean_p99_ms\": %.4f, \"max_p99_ms\": %.4f"
                 ", \"completed\": %" PRId64 ", \"shed\": %" PRId64 "}%s\n",
                 p.tenants, p.sustained_qps, p.mean_p99_ms, p.max_p99_ms,
                 p.completed, p.shed, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"sessions_day\": %" PRId64 ",\n",
               day_r->report.offered);
  std::fprintf(json, "  \"qps_day\": %.4f,\n", day_r->report.sustained_qps);
  std::fprintf(json, "  \"abusive_front_door_shed\": %" PRId64 ",\n",
               abusive_shed);
  std::fprintf(json, "  \"abusive_serve_sheds\": %" PRId64 ",\n",
               abuse->tenant_quota_sheds);
  std::fprintf(json, "  \"p99_delta_max_pct\": %.4f,\n", p99_delta_max_pct);
  std::fprintf(json, "  \"isolation_ok\": %s,\n",
               isolation_ok ? "true" : "false");
  std::fprintf(json, "  \"shed_ok\": %s,\n", shed_ok ? "true" : "false");
  std::fprintf(json, "  \"bytes_identical\": %s,\n",
               bytes_identical ? "true" : "false");
  std::fprintf(json, "  \"deterministic_ok\": %s\n",
               deterministic_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("abusive tenant shed (front door %" PRId64
              ", serve kResourceExhausted %" PRId64 "): %s\n",
              abusive_shed, abuse->tenant_quota_sheds,
              shed_ok ? "ok" : "FAIL");
  std::printf("other tenants' p99 within 10%% (max delta %.2f%%): %s\n",
              p99_delta_max_pct, isolation_ok ? "ok" : "FAIL");
  std::printf("other tenants' result bytes unchanged under abuse: %s\n",
              bytes_identical ? "ok" : "FAIL");
  std::printf("abusive run byte-identical when repeated: %s\n",
              deterministic_ok ? "ok" : "FAIL");
  return (isolation_ok && shed_ok && bytes_identical && deterministic_ok)
             ? 0
             : 1;
}

}  // namespace
}  // namespace vaq

int main() { return vaq::Run(); }
