// Figure 2: F1 of SVAQ vs SVAQD as the initial background probability p0
// varies, for (a) q:{a=blowing leaves; o1=car} and (b) q:{a=washing
// dishes; o1=faucet}.
//
// Paper shape: SVAQD is flat (its adaptive estimate removes the p0
// dependence) while SVAQ peaks in a narrow p0 band and degrades on both
// sides.
#include <initializer_list>

#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

void RunQuery(const char* label, const synth::Scenario& scenario) {
  bench::TablePrinter table(
      std::string("Figure 2") + label + " — F1 vs initial background prob, " +
          scenario.query().ToString(scenario.vocab()),
      {"p0", "SVAQ_F1", "SVAQD_F1", "SVAQ_seqs", "SVAQD_seqs"});
  const IntervalSet truth = scenario.TruthClips();
  for (double p0 : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3}) {
    detect::ModelBundle m1 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqOptions svaq_options;
    svaq_options.p0_object = p0;
    svaq_options.p0_action = p0;
    const online::OnlineResult svaq =
        online::Svaq(scenario.query(), scenario.layout(), svaq_options)
            .Run(m1.detector.get(), m1.recognizer.get());

    detect::ModelBundle m2 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqdOptions svaqd_options;
    svaqd_options.base.p0_object = p0;
    svaqd_options.base.p0_action = p0;
    const online::OnlineResult svaqd =
        online::Svaqd(scenario.query(), scenario.layout(), svaqd_options)
            .Run(m2.detector.get(), m2.recognizer.get());

    table.AddRow({bench::Fmt("%.0e", p0),
                  bench::Fmt("%.3f",
                             eval::SequenceF1(svaq.sequences, truth).f1),
                  bench::Fmt("%.3f",
                             eval::SequenceF1(svaqd.sequences, truth).f1),
                  bench::Fmt(static_cast<int64_t>(svaq.sequences.size())),
                  bench::Fmt(static_cast<int64_t>(svaqd.sequences.size()))});
  }
  table.Print();
}

}  // namespace
}  // namespace vaq

int main() {
  // (a) blowing leaves + car is q2's video with a single object predicate.
  auto a = vaq::synth::Scenario::YouTube(2).WithQuery("blowing leaves",
                                                      {"car"});
  // (b) washing dishes + faucet from q1's video.
  auto b = vaq::synth::Scenario::YouTube(1).WithQuery("washing dishes",
                                                      {"faucet"});
  vaq::RunQuery("a", a.value());
  vaq::RunQuery("b", b.value());
  return 0;
}
