// Ablation: quality of the statistical machinery.
//
// (a) Accuracy of the Naus approximation against exact DP and Monte-Carlo
//     references across the (p, w, L) regimes SVAQ/SVAQD actually visit.
// (b) Kernel bandwidth sweep: how the estimator's bandwidth u trades
//     adaptation speed against estimation noise on a stream with a sudden
//     rate change (the §3.3 design trade-off).
#include <cmath>
#include <initializer_list>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "scanstat/kernel_estimator.h"
#include "scanstat/naus.h"

int main() {
  using namespace vaq;
  {
    bench::TablePrinter table(
        "Ablation A — Naus approximation vs exact/Monte-Carlo",
        {"p", "w", "L", "k", "naus", "reference", "abs_err"});
    for (double p : {0.005, 0.02, 0.08}) {
      for (int64_t w : {10, 16}) {
        for (int64_t L : {10, 100}) {
          const int64_t n = L * w;
          for (int64_t k = 2; k <= w; k += (w / 4)) {
            const double naus = scanstat::ScanStatisticTailProbability(
                k, p, w, static_cast<double>(L));
            const double reference =
                n <= 2000 && w <= 16
                    ? scanstat::ExactScanTailProbabilityDp(k, p, w, n)
                    : scanstat::MonteCarloScanTailProbability(k, p, w, n,
                                                              30000, 99);
            table.AddRow({bench::Fmt("%.3f", p), bench::Fmt(w), bench::Fmt(L),
                          bench::Fmt(k), bench::Fmt("%.5f", naus),
                          bench::Fmt("%.5f", reference),
                          bench::Fmt("%.5f", std::fabs(naus - reference))});
          }
        }
      }
    }
    table.Print();
  }
  {
    bench::TablePrinter table(
        "Ablation B — kernel bandwidth vs adaptation "
        "(rate jumps 0.01 -> 0.08 at t=30000)",
        {"bandwidth_u", "steady_rmse_x1e3", "lag_to_90pct"});
    for (double u : {200.0, 1000.0, 5000.0, 20000.0}) {
      Rng rng(7);
      scanstat::KernelRateEstimator est(u, 0.01, 10);
      double steady_sq = 0;
      int64_t steady_n = 0;
      int64_t lag = -1;
      for (int64_t t = 0; t < 60000; ++t) {
        const double p = t < 30000 ? 0.01 : 0.08;
        est.Observe(rng.Bernoulli(p));
        if (t > 10000 && t < 30000) {
          steady_sq += (est.rate() - 0.01) * (est.rate() - 0.01);
          ++steady_n;
        }
        if (t >= 30000 && lag < 0 && est.rate() > 0.01 + 0.9 * 0.07) {
          lag = t - 30000;
        }
      }
      table.AddRow({bench::Fmt("%.0f", u),
                    bench::Fmt("%.3f", 1000.0 * std::sqrt(steady_sq /
                                                          std::max<int64_t>(
                                                              steady_n, 1))),
                    lag >= 0 ? bench::Fmt(lag) : "never"});
    }
    table.Print();
  }
  return 0;
}
