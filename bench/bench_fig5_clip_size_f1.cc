// Figure 5: frame-level F1 of SVAQ/SVAQD as the clip size varies.
//
// Paper shape: essentially flat — the clip size changes how results are
// segmented into sequences (Figure 4), not which frames are reported.
#include <initializer_list>

#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

void RunQuery(const char* label, const synth::Scenario& base,
              const std::string& action,
              const std::vector<std::string>& objects) {
  bench::TablePrinter table(
      std::string("Figure 5") + label + " — frame-level F1 vs clip size",
      {"clip_frames", "SVAQ_frame_F1", "SVAQD_frame_F1"});
  for (int64_t clip_frames : {50, 100, 200, 400, 800}) {
    auto scenario_or = base.WithClipFrames(clip_frames).WithQuery(action,
                                                                  objects);
    const synth::Scenario& scenario = scenario_or.value();
    const IntervalSet truth_frames =
        scenario.truth().QueryTruthFrames(scenario.query());
    detect::ModelBundle m1 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqOptions svaq_options;
    svaq_options.p0_object = 1e-2;
    svaq_options.p0_action = 1e-2;
    const double svaq_f1 =
        eval::FrameLevelF1Frames(
            online::Svaq(scenario.query(), scenario.layout(), svaq_options)
                .Run(m1.detector.get(), m1.recognizer.get())
                .sequences,
            truth_frames, scenario.layout())
            .f1;
    detect::ModelBundle m2 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    const double svaqd_f1 =
        eval::FrameLevelF1Frames(
            online::Svaqd(scenario.query(), scenario.layout(),
                          online::SvaqdOptions{})
                .Run(m2.detector.get(), m2.recognizer.get())
                .sequences,
            truth_frames, scenario.layout())
            .f1;
    table.AddRow({bench::Fmt(clip_frames), bench::Fmt("%.3f", svaq_f1),
                  bench::Fmt("%.3f", svaqd_f1)});
  }
  table.Print();
}

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  RunQuery("a", synth::Scenario::YouTube(2), "blowing leaves", {"car"});
  RunQuery("b", synth::Scenario::YouTube(1), "washing dishes", {"faucet"});
  return 0;
}
