// Table 8: speedup of RVAQ over Pq-Traverse on the movies Iron Man,
// Star Wars 3 and Titanic, as K varies up to the total number of result
// sequences ("max K").
//
// Paper shape: ~2.7-3.7x at K=1, decaying towards ~1x at max K (where
// every sequence's exact score must be produced anyway). The bench also
// reports RVAQ's ranked-result accuracy against ground truth (§5.3 text:
// precision > 81%, F1 > 82.9%, top-10 perfect).
#include <initializer_list>

#include "bench/bench_util.h"
#include "bench/offline_util.h"
#include "eval/metrics.h"

int main() {
  using namespace vaq;
  bench::TablePrinter table(
      "Table 8 — speedup of RVAQ against Pq-Traverse (modeled runtime)",
      {"movie", "K=1", "K=3", "K=5", "K=7", "K=9", "K=11", "maxK", "maxK_is"});
  bench::TablePrinter accuracy(
      "§5.3 — RVAQ ranked-result accuracy vs ground truth",
      {"movie", "pq_seqs", "precision", "F1", "top10_precision"});

  for (const synth::MovieId id :
       {synth::MovieId::kIronMan, synth::MovieId::kStarWars3,
        synth::MovieId::kTitanic}) {
    bench::OfflineFixture fixture(synth::Scenario::Movie(id));
    const int64_t max_k = static_cast<int64_t>(fixture.pq.size());
    std::vector<std::string> row = {synth::MovieName(id)};
    for (int64_t k : {1L, 3L, 5L, 7L, 9L, 11L, max_k}) {
      k = std::min(k, max_k);
      const double traverse_ms = bench::ModeledRuntimeMs(
          offline::PqTraverse(fixture.tables, fixture.scoring, k).accesses);
      const double rvaq_ms =
          bench::ModeledRuntimeMs(fixture.RunRvaq(k).accesses);
      row.push_back(bench::Fmt("%.2fx", traverse_ms / rvaq_ms));
    }
    row.push_back(bench::Fmt(max_k));
    table.AddRow(row);

    // Accuracy of the full ranking against ground truth.
    const offline::TopKResult all = fixture.RunRvaq(max_k);
    IntervalSet result_set;
    for (const offline::RankedSequence& seq : all.top) {
      result_set.Add(seq.clips);
    }
    const IntervalSet truth = fixture.scenario.TruthClips();
    const eval::F1Result f1 = eval::SequenceF1(result_set, truth, 0.5);
    // Top-10 precision: how many of the 10 best-ranked sequences match a
    // truth sequence at IoU 0.5.
    int top10_tp = 0;
    int top10_n = 0;
    for (size_t i = 0; i < all.top.size() && i < 10; ++i) {
      ++top10_n;
      for (const Interval& gt : truth.intervals()) {
        if (IntervalIoU(all.top[i].clips, gt) >= 0.5) {
          ++top10_tp;
          break;
        }
      }
    }
    accuracy.AddRow(
        {synth::MovieName(id), bench::Fmt(max_k),
         bench::Fmt("%.3f", f1.precision), bench::Fmt("%.3f", f1.f1),
         bench::Fmt("%.2f", top10_n > 0 ? static_cast<double>(top10_tp) /
                                              top10_n
                                        : 0.0)});
  }
  table.Print();
  accuracy.Print();
  return 0;
}
