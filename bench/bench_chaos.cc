// Chaos-harness throughput and coverage: how many whole-stack
// scenario+schedule trials per second the deterministic chaos engine
// (src/chaos/) sustains, and which fault domains a fixed-seed sweep
// actually exercises.
//
// The sweep is the same code path `vaqctl chaos` and CI run: each trial
// draws a scenario and a fault schedule from (seed, trial), runs the
// faulted stack against its fault-free reference, and checks every
// invariant oracle. The bench reports trials/sec (wall clock — the
// harness itself is the system under measurement, unlike the simulated
// timelines the other benches price) and the fault-event coverage
// histogram grouped by domain (env.* injected by the environment
// FaultPlan, event.* applied by the schedule, net.*/cluster.* observed
// from the simulated network). Two assertions gate the exit code: the
// sweep must pass every oracle, and every domain must register at least
// one event — a silent-zero domain means the generator or the plumbing
// regressed. Results land in BENCH_chaos.json.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/engine.h"
#include "chaos/scenario.h"

namespace vaq {
namespace {

constexpr int64_t kTrials = 40;
constexpr uint64_t kSeed = 1;

// "env.timeout" -> "env"; bare keys fall into a catch-all domain.
std::string DomainOf(const std::string& key) {
  const size_t dot = key.find('.');
  return dot == std::string::npos ? "other" : key.substr(0, dot);
}

int Run() {
  chaos::ChaosOptions options;
  options.trials = kTrials;
  options.seed = kSeed;

  const auto start = std::chrono::steady_clock::now();
  const auto report = chaos::RunChaos(options);
  const auto stop = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::fprintf(stderr, "chaos sweep errored: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(stop - start).count();
  const double trials_per_s =
      wall_s > 0.0 ? static_cast<double>(report->trials_run) / wall_s : 0.0;

  std::map<std::string, int64_t> domain_totals;
  for (const auto& [key, count] : report->coverage) {
    domain_totals[DomainOf(key)] += count;
  }

  bench::TablePrinter table(
      "Chaos harness — fault-event coverage by domain",
      {"domain", "event", "count"});
  for (const auto& [key, count] : report->coverage) {
    table.AddRow({DomainOf(key), key, bench::Fmt(count)});
  }
  for (const auto& [domain, total] : domain_totals) {
    table.AddRow({domain, "(total)", bench::Fmt(total)});
  }
  table.Print();

  std::printf("\ntrials: %" PRId64 "  wall: %.2fs  trials/sec: %.2f\n",
              report->trials_run, wall_s, trials_per_s);
  for (const auto& [phase, count] : report->trials_per_phase) {
    std::printf("phase %-8s %" PRId64 " trials\n", phase.c_str(), count);
  }

  const bool oracles_held = !report->failed();
  // env.* and event.* are generated; net.* and cluster.* are observed
  // from the cluster phase's simulated network under those faults.
  bool domains_covered = true;
  for (const char* domain : {"env", "event", "net", "cluster"}) {
    if (domain_totals[domain] <= 0) domains_covered = false;
  }

  FILE* json = std::fopen("BENCH_chaos.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_chaos.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  bench::WriteJsonMeta(json, kSeed,
                       "chaos sweep: " + std::to_string(kTrials) +
                           " whole-stack trials, reference vs faulted");
  std::fprintf(json, "  \"trials\": %" PRId64 ",\n", report->trials_run);
  std::fprintf(json, "  \"wall_seconds\": %.3f,\n", wall_s);
  std::fprintf(json, "  \"trials_per_sec\": %.3f,\n", trials_per_s);
  std::fprintf(json, "  \"phases\": {");
  {
    size_t i = 0;
    for (const auto& [phase, count] : report->trials_per_phase) {
      std::fprintf(json, "%s\"%s\": %" PRId64,
                   i++ > 0 ? ", " : "", phase.c_str(), count);
    }
  }
  std::fprintf(json, "},\n");
  std::fprintf(json, "  \"coverage\": {\n");
  {
    size_t i = 0;
    for (const auto& [key, count] : report->coverage) {
      std::fprintf(json, "    \"%s\": %" PRId64 "%s\n", key.c_str(), count,
                   ++i < report->coverage.size() ? "," : "");
    }
  }
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"domain_totals\": {");
  {
    size_t i = 0;
    for (const auto& [domain, total] : domain_totals) {
      std::fprintf(json, "%s\"%s\": %" PRId64,
                   i++ > 0 ? ", " : "", domain.c_str(), total);
    }
  }
  std::fprintf(json, "},\n");
  std::fprintf(json, "  \"all_oracles_held\": %s,\n",
               oracles_held ? "true" : "false");
  std::fprintf(json, "  \"all_domains_covered\": %s\n",
               domains_covered ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("all oracles held across %" PRId64 " trials: %s\n",
              report->trials_run, oracles_held ? "ok" : "FAIL");
  if (!oracles_held) {
    for (const std::string& v : report->failure) {
      std::fprintf(stderr, "  violation: %s\n", v.c_str());
    }
  }
  std::printf("every fault domain exercised (env/event/net/cluster): %s\n",
              domains_covered ? "ok" : "FAIL");
  return (oracles_held && domains_covered) ? 0 : 1;
}

}  // namespace
}  // namespace vaq

int main() { return vaq::Run(); }
