// Serving-runtime scaling sweep: modeled makespan of the mixed
// multi-query demo workload across worker counts, with the shared
// detection cache on and off.
//
// Throughput is reported on the simulated timeline (ModeledMakespanMs —
// a deterministic list schedule over the per-stream shard chains using
// each query's simulated model/disk cost) rather than wall clock, so the
// sweep is reproducible on any machine, including single-core CI boxes
// where a real 8-thread pool cannot speed anything up. Each
// configuration still *executes* on a real pool of that size; the
// determinism property (tests/serve_determinism_test.cc) is what makes
// the per-query costs comparable across thread counts.
//
// Expectation (ISSUE acceptance criteria): >= 3x throughput at 8 threads
// vs 1 thread, and the shared cache strictly reduces total model
// invocations when several standing queries touch the same stream. Both
// are asserted here and recorded in BENCH_serve.json; the process exits
// nonzero if either fails.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <algorithm>

#include "bench/bench_util.h"
#include "fault/fault_plan.h"
#include "obs/query_trace.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace {

constexpr int kStreams = 8;
constexpr int kQueries = 48;
constexpr uint64_t kSeed = 7;

struct ConfigResult {
  int threads = 0;
  bool cache = false;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t inferences = 0;
  int64_t bundle_reuses = 0;
  double makespan_ms = 0.0;
  // Modeled per-query answer latency (simulated ms, nearest-rank exact
  // percentiles over all served queries). The sample multiset is a pure
  // function of the workload, so these are identical at every thread
  // count — the sweep's SLO columns, not a scaling metric.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

ConfigResult RunConfig(int threads, bool cache,
                       const std::vector<std::string>& workload) {
  const fault::FaultPlan plan(tools::DemoFaultSpec(), kSeed);
  serve::ServeOptions options;
  options.threads = threads;
  options.queue_capacity = kQueries;
  options.share_detection_cache = cache;
  options.fault_plan = &plan;
  serve::Server server(options);
  const Status registered = tools::RegisterDemoSources(
      &server, kStreams, /*with_repository=*/true, kSeed);
  if (!registered.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.ToString().c_str());
    std::exit(1);
  }
  for (const std::string& sql : workload) {
    const auto id = server.Submit(sql);
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  const std::vector<serve::ServedQuery> results = server.Drain();
  const serve::ServeStats stats = server.stats();
  ConfigResult out;
  out.threads = threads;
  out.cache = cache;
  out.completed = stats.completed;
  out.failed = stats.failed;
  out.inferences =
      stats.detector_stats.inferences + stats.recognizer_stats.inferences;
  out.bundle_reuses = stats.cache_bundle_reuses;
  out.makespan_ms = serve::ModeledMakespanMs(results, threads);
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const serve::ServedQuery& q : results) {
    latencies.push_back(q.simulated_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = obs::PercentileNearestRank(latencies, 0.5);
  out.p99_ms = obs::PercentileNearestRank(latencies, 0.99);
  out.p999_ms = obs::PercentileNearestRank(latencies, 0.999);
  return out;
}

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  const std::vector<std::string> workload =
      tools::DemoWorkload(kStreams, kQueries, /*with_repository=*/true);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  bench::TablePrinter table(
      "Serve — modeled makespan vs worker count, shared cache on/off",
      {"threads", "cache", "completed", "inferences", "bundle_reuses",
       "makespan_ms", "speedup_vs_1", "p50_ms", "p99_ms", "p999_ms"});
  std::vector<ConfigResult> rows;
  for (const bool cache : {true, false}) {
    double base_ms = 0.0;
    for (const int threads : thread_counts) {
      const ConfigResult r = RunConfig(threads, cache, workload);
      if (threads == 1) base_ms = r.makespan_ms;
      table.AddRow({bench::Fmt(static_cast<int64_t>(r.threads)),
                    r.cache ? "on" : "off",
                    bench::Fmt(r.completed),
                    bench::Fmt(r.inferences),
                    bench::Fmt(r.bundle_reuses),
                    bench::Fmt("%.1f", r.makespan_ms),
                    bench::Fmt("%.2f", base_ms / r.makespan_ms),
                    bench::Fmt("%.2f", r.p50_ms),
                    bench::Fmt("%.2f", r.p99_ms),
                    bench::Fmt("%.2f", r.p999_ms)});
      rows.push_back(r);
    }
  }
  table.Print();

  // Acceptance metrics, taken from the cache-on sweep and the 8-thread
  // cache comparison.
  double makespan_1 = 0.0, makespan_8 = 0.0;
  int64_t inferences_on = 0, inferences_off = 0, reuses_on = 0;
  int64_t completed = 0, failed = 0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
  for (const ConfigResult& r : rows) {
    completed += r.completed;
    failed += r.failed;
    if (r.cache && r.threads == 1) makespan_1 = r.makespan_ms;
    if (r.cache && r.threads == 8) {
      makespan_8 = r.makespan_ms;
      inferences_on = r.inferences;
      reuses_on = r.bundle_reuses;
      p50 = r.p50_ms;
      p99 = r.p99_ms;
      p999 = r.p999_ms;
    }
    if (!r.cache && r.threads == 8) inferences_off = r.inferences;
  }
  const double speedup = makespan_8 > 0.0 ? makespan_1 / makespan_8 : 0.0;
  const double reduction =
      inferences_off > 0
          ? 1.0 - static_cast<double>(inferences_on) /
                      static_cast<double>(inferences_off)
          : 0.0;
  const bool speedup_ok = speedup >= 3.0;
  const bool cache_ok = inferences_on < inferences_off && reuses_on > 0;
  const bool all_completed = failed == 0 &&
                             completed == static_cast<int64_t>(rows.size()) *
                                              kQueries;

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  bench::WriteJsonMeta(json, kSeed,
                       "serve sweep: threads {1,2,4,8} x cache {on,off}, " +
                           std::to_string(kStreams) + " streams, " +
                           std::to_string(kQueries) + " queries");
  std::fprintf(json, "  \"streams\": %d,\n  \"queries\": %d,\n",
               kStreams, kQueries);
  std::fprintf(json, "  \"configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigResult& r = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"cache\": %s, \"completed\": %" PRId64
                 ", \"inferences\": %" PRId64 ", \"bundle_reuses\": %" PRId64
                 ", \"modeled_makespan_ms\": %.3f, \"latency_p50_ms\": %.3f"
                 ", \"latency_p99_ms\": %.3f, \"latency_p999_ms\": %.3f}%s\n",
                 r.threads, r.cache ? "true" : "false", r.completed,
                 r.inferences, r.bundle_reuses, r.makespan_ms, r.p50_ms,
                 r.p99_ms, r.p999_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"latency_p50_ms\": %.3f,\n", p50);
  std::fprintf(json, "  \"latency_p99_ms\": %.3f,\n", p99);
  std::fprintf(json, "  \"latency_p999_ms\": %.3f,\n", p999);
  std::fprintf(json, "  \"speedup_8_threads\": %.4f,\n", speedup);
  std::fprintf(json, "  \"cache_invocation_reduction\": %.4f,\n", reduction);
  std::fprintf(json, "  \"speedup_ok\": %s,\n", speedup_ok ? "true" : "false");
  std::fprintf(json, "  \"cache_ok\": %s,\n", cache_ok ? "true" : "false");
  std::fprintf(json, "  \"all_completed\": %s\n",
               all_completed ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("speedup @8 threads (cache on): %.2fx (require >= 3.00x): %s\n",
              speedup, speedup_ok ? "ok" : "FAIL");
  std::printf("shared cache invocation reduction @8 threads: %.1f%% "
              "(%" PRId64 " -> %" PRId64 "): %s\n",
              reduction * 100.0, inferences_off, inferences_on,
              cache_ok ? "ok" : "FAIL");
  return (speedup_ok && cache_ok && all_completed) ? 0 : 1;
}
