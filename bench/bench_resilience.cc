// Resilience sweep: query quality and runtime versus injected
// detector/recognizer outage rate, for each missing-observation policy.
//
// Expectation (see DESIGN.md "Failure model & degradation policies"):
// under the background-prior policy, F1 degrades monotonically and
// smoothly as the outage rate rises from 0% to 20% — no crashes, no
// cliffs. Assume-negative loses recall fastest; carry-last sits between.
// The fault schedules are coupled across rates (same plan seed), so the
// sweep is monotone by construction at the fault level; the table shows
// it also holds at the F1 level.
#include <vector>

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "fault/fault_plan.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

const char* PolicyName(online::MissingObsPolicy policy) {
  switch (policy) {
    case online::MissingObsPolicy::kAssumeNegative:
      return "assume-negative";
    case online::MissingObsPolicy::kCarryLast:
      return "carry-last";
    case online::MissingObsPolicy::kBackgroundPrior:
      return "background-prior";
  }
  return "?";
}

synth::Scenario MakeScenario() {
  synth::ScenarioSpec spec;
  spec.name = "resilience_bench";
  spec.minutes = 12;
  spec.fps = 30;
  spec.seed = 2024;
  synth::ActionTrackSpec action;
  action.name = "running";
  action.duty = 0.3;
  action.mean_len_frames = 1000;
  spec.actions.push_back(action);
  synth::ObjectTrackSpec dog;
  dog.name = "dog";
  dog.background_duty = 0.06;
  dog.mean_len_frames = 700;
  dog.coupled_action = "running";
  dog.cover_action_prob = 0.9;
  spec.objects.push_back(dog);
  return synth::Scenario::FromSpec(spec, "running", {"dog"});
}

struct SweepPoint {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double algo_ms = 0.0;
  int64_t degraded = 0;
  int64_t dropped = 0;
  int64_t faults = 0;
  int64_t retries = 0;
  int64_t fallbacks = 0;
  int64_t breaker_trips = 0;
};

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  const synth::Scenario scenario = MakeScenario();
  const IntervalSet truth = scenario.TruthClips();
  const std::vector<double> rates = {0.0, 0.025, 0.05, 0.10, 0.15, 0.20};
  const std::vector<online::MissingObsPolicy> policies = {
      online::MissingObsPolicy::kAssumeNegative,
      online::MissingObsPolicy::kCarryLast,
      online::MissingObsPolicy::kBackgroundPrior,
  };
  const std::vector<uint64_t> model_seeds = {5, 6, 7};

  bench::TablePrinter table(
      "Resilience — F1 and runtime vs injected outage rate",
      {"outage_rate", "policy", "F1", "precision", "recall", "degraded",
       "dropped", "faults", "retries", "fallbacks", "breaker_trips",
       "algo_ms"});
  std::vector<double> prior_f1_by_rate;

  for (const double rate : rates) {
    fault::FaultSpec spec;
    spec.crash_rate = rate;
    spec.crash_len_units = 600;  // 20 s outage windows at 30 fps.
    spec.drop_clip_rate = rate / 8.0;
    // One plan seed for the whole sweep: raising the rate only adds
    // faults, so the sweep is monotone at the schedule level.
    const fault::FaultPlan plan(spec, 1);

    for (const online::MissingObsPolicy policy : policies) {
      SweepPoint avg;
      for (const uint64_t seed : model_seeds) {
        online::SvaqdOptions options;
        options.fault_plan = &plan;
        options.missing_policy = policy;
        detect::ModelBundle models =
            detect::ModelBundle::MaskRcnnI3d(scenario.truth(), seed);
        const online::OnlineResult result =
            online::Svaqd(scenario.query(), scenario.layout(), options)
                .Run(models.detector.get(), models.recognizer.get());
        const eval::F1Result f1 =
            eval::FrameLevelF1(result.sequences, truth, scenario.layout());
        avg.f1 += f1.f1;
        avg.precision += f1.precision;
        avg.recall += f1.recall;
        avg.algo_ms += result.algorithm_wall_ms;
        avg.degraded += result.degraded_clips;
        avg.dropped += result.dropped_clips;
        detect::ModelStats stats = result.detector_stats;
        stats += result.recognizer_stats;
        avg.faults += stats.faults_injected;
        avg.retries += stats.retries;
        avg.fallbacks += stats.fallbacks;
        avg.breaker_trips += stats.breaker_trips;
      }
      const double n = static_cast<double>(model_seeds.size());
      table.AddRow({bench::Fmt("%.3f", rate), PolicyName(policy),
                    bench::Fmt("%.4f", avg.f1 / n),
                    bench::Fmt("%.4f", avg.precision / n),
                    bench::Fmt("%.4f", avg.recall / n),
                    bench::Fmt(avg.degraded / static_cast<int64_t>(n)),
                    bench::Fmt(avg.dropped / static_cast<int64_t>(n)),
                    bench::Fmt(avg.faults / static_cast<int64_t>(n)),
                    bench::Fmt(avg.retries / static_cast<int64_t>(n)),
                    bench::Fmt(avg.fallbacks / static_cast<int64_t>(n)),
                    bench::Fmt(avg.breaker_trips / static_cast<int64_t>(n)),
                    bench::Fmt("%.1f", avg.algo_ms / n)});
      if (policy == online::MissingObsPolicy::kBackgroundPrior) {
        prior_f1_by_rate.push_back(avg.f1 / n);
      }
    }
  }
  table.Print();

  // Degradation-shape check for the background-prior policy: F1 should
  // fall (or hold) as the outage rate rises, without cliffs.
  bool monotone = true;
  double max_step = 0.0;
  for (size_t i = 1; i < prior_f1_by_rate.size(); ++i) {
    const double step = prior_f1_by_rate[i - 1] - prior_f1_by_rate[i];
    if (step < -1e-3) monotone = false;  // A rise beyond seed noise.
    if (step > max_step) max_step = step;
  }
  std::printf("background-prior F1 monotone non-increasing: %s "
              "(largest single-step drop %.4f)\n",
              monotone ? "yes" : "NO", max_step);
  return 0;
}
