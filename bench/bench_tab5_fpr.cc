// Table 5: false positive rate of the raw action/object detections
// without SVAQD vs the rate remaining inside SVAQD's result sequences.
//
// Paper shape: SVAQD removes 50-80%+ of the detectors' false positives.
#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

void RunQuery(const synth::Scenario& scenario, bench::TablePrinter& table) {
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
  const QuerySpec& query = scenario.query();

  // Raw model FPRs (per frame for the object, per shot for the action).
  const double raw_action_fpr =
      eval::RawActionFpr(scenario.truth(), *models.recognizer, query.action);
  const double raw_object_fpr = eval::RawObjectFpr(
      scenario.truth(), *models.detector, query.objects[0]);

  // FPR surviving SVAQD: raw false positives that still land inside the
  // reported result sequences.
  models.ResetStats();
  const online::OnlineResult result =
      online::Svaqd(query, scenario.layout(), online::SvaqdOptions{})
          .Run(models.detector.get(), models.recognizer.get());
  const double svaqd_action_fpr = eval::SurvivingActionFpr(
      scenario.truth(), *models.recognizer, query.action, result.sequences);
  const double svaqd_object_fpr = eval::SurvivingObjectFpr(
      scenario.truth(), *models.detector, query.objects[0],
      result.sequences);

  table.AddRow({query.ToString(scenario.vocab()),
                bench::Fmt("%.4f", raw_action_fpr),
                bench::Fmt("%.4f", svaqd_action_fpr),
                bench::Fmt("%.4f", raw_object_fpr),
                bench::Fmt("%.4f", svaqd_object_fpr),
                bench::Fmt("%.0f%%", 100.0 * (1.0 - svaqd_action_fpr /
                                                        std::max(raw_action_fpr,
                                                                 1e-12))),
                bench::Fmt("%.0f%%", 100.0 * (1.0 - svaqd_object_fpr /
                                                        std::max(raw_object_fpr,
                                                                 1e-12)))});
}

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  bench::TablePrinter table(
      "Table 5 — detection false-positive rate without vs with SVAQD",
      {"query", "act_FPR_raw", "act_FPR_svaqd", "obj_FPR_raw",
       "obj_FPR_svaqd", "act_reduction", "obj_reduction"});
  RunQuery(
      synth::Scenario::YouTube(2).WithQuery("blowing leaves", {"car"}).value(),
      table);
  RunQuery(synth::Scenario::YouTube(1)
               .WithQuery("washing dishes", {"faucet"})
               .value(),
           table);
  table.Print();
  return 0;
}
