// Checkpoint overhead sweep: snapshot interval × stream length for the
// durable standing-query demo session.
//
// Each configuration runs the clip-lockstep serving loop against a
// MemStore, snapshotting every N clips, and prices durability on the
// same simulated timeline the serving bench uses: a snapshot costs one
// seek (bench_util.h kSeekMs) plus a per-byte write cost, observed into
// vaq_ckpt_snapshot_modeled_ms by the server. The overhead ratio is that
// total against the session's simulated model time. Logical results must
// be byte-identical across intervals — checkpointing is pure overhead,
// never a behavior change — and at the default interval the overhead
// must stay under 10% (ISSUE acceptance criterion). Both are asserted;
// the process exits nonzero on violation. Results land in
// BENCH_ckpt.json.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckpt/store.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace {

constexpr int kStreams = 2;
constexpr int kQueries = 6;
constexpr uint64_t kSeed = 7;
// 0 disables checkpointing (the no-durability baseline row).
const int64_t kIntervals[] = {0, 4, serve::kDefaultSnapshotEveryClips, 16,
                              32};
const int64_t kStreamLengths[] = {54, 108};  // Clips driven per stream.

struct ConfigResult {
  int64_t interval = 0;
  int64_t length = 0;
  int64_t snapshots = 0;
  int64_t snapshot_bytes = 0;
  int64_t wal_records = 0;
  double snapshot_ms = 0.0;   // Modeled durability overhead.
  double simulated_ms = 0.0;  // Session model time (the work itself).
  double overhead = 0.0;      // snapshot_ms / simulated_ms.
  std::vector<std::string> described;
};

int64_t CounterValue(const char* name) {
  return obs::MetricRegistry::Global().GetCounter(name, {})->value();
}

double SnapshotOverheadMs() {
  const obs::Snapshot snap = obs::MetricRegistry::Global().TakeSnapshot();
  for (const obs::Snapshot::Entry& entry : snap.entries) {
    if (entry.name == "vaq_ckpt_snapshot_modeled_ms") return entry.hist_sum;
  }
  return 0.0;
}

ConfigResult RunConfig(int64_t interval, int64_t length) {
  obs::MetricRegistry::Global().Reset();
  const fault::FaultPlan plan(tools::DemoFaultSpec(), kSeed);
  ckpt::MemStore store;
  tools::StandingDemoSpec spec;
  spec.num_streams = kStreams;
  spec.num_queries = kQueries;
  spec.seed = kSeed;
  spec.fault_plan = &plan;
  spec.checkpoint_store = interval > 0 ? &store : nullptr;
  spec.snapshot_every_clips = interval;

  auto server = tools::MakeStandingDemoServer(spec);
  Status status = server.status();
  if (status.ok()) {
    status = tools::AdmitStandingDemoWorkload(server.value().get(), spec);
  }
  if (status.ok()) {
    status = tools::DriveStandingDemo(server.value().get(), spec,
                                      static_cast<int64_t>(kStreams) * length);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "config interval=%lld length=%lld failed: %s\n",
                 static_cast<long long>(interval),
                 static_cast<long long>(length), status.ToString().c_str());
    std::exit(1);
  }
  ConfigResult out;
  out.interval = interval;
  out.length = length;
  for (const serve::ServedQuery& q : server.value()->FinishStanding()) {
    out.described.push_back(serve::DescribeServedQuery(q));
  }
  out.snapshots = CounterValue("vaq_ckpt_snapshots_total");
  out.snapshot_bytes = CounterValue("vaq_ckpt_snapshot_bytes_total");
  out.wal_records = CounterValue("vaq_ckpt_wal_records_total");
  out.snapshot_ms = SnapshotOverheadMs();
  out.simulated_ms = server.value()->stats().total_simulated_ms;
  out.overhead =
      out.simulated_ms > 0.0 ? out.snapshot_ms / out.simulated_ms : 0.0;
  return out;
}

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  bench::TablePrinter table(
      "Checkpoint — snapshot overhead vs interval and stream length",
      {"interval_clips", "stream_clips", "snapshots", "snapshot_bytes",
       "wal_records", "snapshot_ms", "session_ms", "overhead_pct"});
  std::vector<ConfigResult> rows;
  bool identical = true;
  bool default_overhead_ok = true;
  for (const int64_t length : kStreamLengths) {
    std::vector<std::string> baseline;
    for (const int64_t interval : kIntervals) {
      rows.push_back(RunConfig(interval, length));
      const ConfigResult& r = rows.back();
      if (baseline.empty()) {
        baseline = r.described;
      } else if (r.described != baseline) {
        identical = false;
      }
      if (interval == serve::kDefaultSnapshotEveryClips &&
          r.overhead > 0.10) {
        default_overhead_ok = false;
      }
      table.AddRow({bench::Fmt(r.interval), bench::Fmt(r.length),
                    bench::Fmt(r.snapshots), bench::Fmt(r.snapshot_bytes),
                    bench::Fmt(r.wal_records),
                    bench::Fmt("%.1f", r.snapshot_ms),
                    bench::Fmt("%.1f", r.simulated_ms),
                    bench::Fmt("%.2f", r.overhead * 100.0)});
    }
  }
  table.Print();

  FILE* json = std::fopen("BENCH_ckpt.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ckpt.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  bench::WriteJsonMeta(json, kSeed,
                       "checkpoint sweep: snapshot interval x stream "
                       "length, " +
                           std::to_string(kStreams) + " streams, " +
                           std::to_string(kQueries) + " queries");
  std::fprintf(json, "  \"streams\": %d,\n  \"queries\": %d,\n", kStreams,
               kQueries);
  std::fprintf(json, "  \"configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigResult& r = rows[i];
    std::fprintf(
        json,
        "    {\"interval_clips\": %" PRId64 ", \"stream_clips\": %" PRId64
        ", \"snapshots\": %" PRId64 ", \"snapshot_bytes\": %" PRId64
        ", \"wal_records\": %" PRId64
        ", \"snapshot_modeled_ms\": %.3f, \"session_simulated_ms\": %.3f"
        ", \"overhead\": %.6f}%s\n",
        r.interval, r.length, r.snapshots, r.snapshot_bytes, r.wal_records,
        r.snapshot_ms, r.simulated_ms, r.overhead,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"default_interval_clips\": %lld,\n",
               static_cast<long long>(serve::kDefaultSnapshotEveryClips));
  std::fprintf(json, "  \"results_identical_across_intervals\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"default_overhead_ok\": %s\n",
               default_overhead_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  std::printf("results identical across snapshot intervals: %s\n",
              identical ? "ok" : "FAIL");
  std::printf("overhead at default interval (%lld clips) <= 10%%: %s\n",
              static_cast<long long>(serve::kDefaultSnapshotEveryClips),
              default_overhead_ok ? "ok" : "FAIL");
  return (identical && default_overhead_ok) ? 0 : 1;
}
