// Table 3: F1 of queries with varying object predicates, on the blowing-
// leaves and washing-dishes videos.
//
// Paper shape: adding a highly-correlated, accurately-detected predicate
// ("person") *raises* F1; adding more predicates generally lowers it
// slightly (error accumulation).
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

struct Variant {
  std::string action;
  std::vector<std::string> objects;
};

void RunFamily(const synth::Scenario& base,
               const std::vector<Variant>& variants,
               bench::TablePrinter& table) {
  for (const Variant& variant : variants) {
    auto scenario_or = base.WithQuery(variant.action, variant.objects);
    VAQ_CHECK(scenario_or.ok()) << scenario_or.status().ToString();
    const synth::Scenario& scenario = scenario_or.value();
    const IntervalSet truth = scenario.TruthClips();

    detect::ModelBundle m1 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    online::SvaqOptions svaq_options;
    svaq_options.p0_object = 1e-2;
    svaq_options.p0_action = 1e-2;
    const double svaq_f1 =
        eval::SequenceF1(
            online::Svaq(scenario.query(), scenario.layout(), svaq_options)
                .Run(m1.detector.get(), m1.recognizer.get())
                .sequences,
            truth)
            .f1;
    detect::ModelBundle m2 =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    const double svaqd_f1 =
        eval::SequenceF1(online::Svaqd(scenario.query(), scenario.layout(),
                                       online::SvaqdOptions{})
                             .Run(m2.detector.get(), m2.recognizer.get())
                             .sequences,
                         truth)
            .f1;
    table.AddRow({scenario.query().ToString(scenario.vocab()),
                  bench::Fmt("%.2f", svaq_f1), bench::Fmt("%.2f", svaqd_f1)});
  }
}

}  // namespace
}  // namespace vaq

int main() {
  using namespace vaq;
  bench::TablePrinter table(
      "Table 3 — F1 of queries with varying object predicates",
      {"query", "SVAQ", "SVAQD"});
  const synth::Scenario leaves = synth::Scenario::YouTube(2);
  RunFamily(leaves,
            {{"blowing leaves", {}},
             {"blowing leaves", {"person"}},
             {"blowing leaves", {"plant"}},
             {"blowing leaves", {"car"}},
             {"blowing leaves", {"person", "car"}},
             {"blowing leaves", {"person", "plant", "car"}}},
            table);
  const synth::Scenario dishes = synth::Scenario::YouTube(1);
  RunFamily(dishes,
            {{"washing dishes", {}},
             {"washing dishes", {"person"}},
             {"washing dishes", {"oven"}},
             {"washing dishes", {"faucet"}},
             {"washing dishes", {"faucet", "oven"}},
             {"washing dishes", {"person", "faucet", "oven"}}},
            table);
  table.Print();
  return 0;
}
