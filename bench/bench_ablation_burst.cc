// Ablation: burst-aware critical values (§3.2 footnote 7).
//
// Detector errors flicker in runs, violating the iid assumption behind
// the Naus calibration; with strongly bursty false positives, iid
// critical values are too permissive and precision collapses. SVAQD's
// burst_aware mode estimates the noise autocorrelation online and
// calibrates with the Markov-dependent scan statistics instead. The sweep
// varies the detector's false-positive burst length.
#include <initializer_list>

#include "bench/bench_util.h"
#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

int main() {
  using namespace vaq;
  // Object-only query: with no conjoined action to mask them, bursty
  // object false positives hit precision directly.
  auto scenario_or = synth::Scenario::YouTube(2).WithQuery("", {"car"});
  const synth::Scenario& scenario = scenario_or.value();
  const IntervalSet truth = scenario.TruthClips();

  bench::TablePrinter table(
      "Ablation — burst-aware critical values vs FP burst length "
      "(q:{o1=car}, object FPR 4%)",
      {"fp_burst", "iid_F1", "iid_precision", "burst_F1",
       "burst_precision"});
  for (int32_t burst : {1, 4, 8, 16, 24}) {
    detect::ModelProfile object_profile = detect::ModelProfile::MaskRcnn();
    object_profile.fpr = 0.04;  // Noisier detector: bursts matter.
    object_profile.fp_block = burst;
    object_profile.fn_block = 2;

    auto run = [&](bool burst_aware) {
      detect::ModelBundle models = detect::ModelBundle::Make(
          scenario.truth(), object_profile, detect::ModelProfile::I3d(),
          detect::ModelProfile::CenterTrack(), 7);
      online::SvaqdOptions options;
      options.burst_aware = burst_aware;
      online::Svaqd engine(scenario.query(), scenario.layout(), options);
      const online::OnlineResult result =
          engine.Run(models.detector.get(), models.recognizer.get());
      return eval::SequenceF1(result.sequences, truth);
    };
    const eval::F1Result iid = run(false);
    const eval::F1Result aware = run(true);
    table.AddRow({bench::Fmt(static_cast<int64_t>(burst)),
                  bench::Fmt("%.3f", iid.f1),
                  bench::Fmt("%.3f", iid.precision),
                  bench::Fmt("%.3f", aware.f1),
                  bench::Fmt("%.3f", aware.precision)});
  }
  table.Print();
  return 0;
}
